//! Test problems: initial conditions, configurations, and analytic
//! references, unified behind the [`scenario`] registry.
//!
//! * [`gaussian`] — the paper's radiation test: diffusion of a 2-D
//!   Gaussian pulse on a 200 × 100 grid with two species, 100 timesteps,
//!   three solves per step (Table I's workload), plus a linear variant
//!   with a closed-form solution for verification;
//! * [`shock_tube`] — the Sod problem exercising the hydro module;
//! * [`equilibrium`] — two-species radiative relaxation with an
//!   exponential analytic rate, verifying the species coupling;
//! * [`marshak`] — matter–radiation thermalization with an analytic
//!   joint equilibrium, verifying the emission/absorption coupling;
//! * [`sedov`] — a Sedov–Taylor blast in a closed box (conservation
//!   invariants plus the similarity radius);
//! * [`kelvin_helmholtz`] — a seeded shear-layer instability with a
//!   pinned growth factor;
//! * [`radshock`] — a radiative step front with an erfc closed form;
//! * [`multigroup`] — two groups crossing an opacity step, each with
//!   its own analytic diffusion rate;
//! * [`scenario`] — the [`scenario::Scenario`] trait, the string-keyed
//!   [`scenario::Family`] registry, and the shared validation numerics
//!   (collective norms, `erf`, the exact Riemann solver, the 0-D
//!   coupling ODE reference).

pub mod equilibrium;
pub mod gaussian;
pub mod kelvin_helmholtz;
pub mod marshak;
pub mod multigroup;
pub mod radshock;
pub mod scenario;
pub mod sedov;
pub mod shock_tube;

pub use equilibrium::RadiativeRelaxation;
pub use gaussian::GaussianPulse;
pub use kelvin_helmholtz::KelvinHelmholtzScenario;
pub use marshak::MatterRelaxation;
pub use multigroup::MultigroupScenario;
pub use radshock::RadShockScenario;
pub use scenario::{
    deck_from_config, Convergence, ConvergenceMode, Family, Refinement, Scenario, ValidationReport,
    FAMILIES,
};
pub use sedov::SedovScenario;
pub use shock_tube::SodTube;
