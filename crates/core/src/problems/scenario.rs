//! The problem-family registry and its uniform validation harness.
//!
//! Every test problem V2D can run — the paper's Gaussian pulse, the
//! legacy verification problems, and the physics workloads added on top
//! of them — is a [`Scenario`]: one object that knows how to configure
//! a run at any resolution, set the initial condition, and *grade* the
//! finished fields against an analytic or golden reference.  Scenarios
//! are string-keyed by [`Family`], so a parameter deck selects one with
//!
//! ```text
//! [problem]
//! family = sedov
//! ```
//!
//! and every layer that launches runs — the `v2d` driver, the
//! `v2d-serve` request path, the testkit fuzzer, and the supervised
//! fault path — reaches the same registry.
//!
//! Two invariants make the registry safe to thread everywhere:
//!
//! * **`Family::Gaussian` is the legacy run.**  Its `init` delegates to
//!   exactly `GaussianPulse::standard().init`, so every pre-registry
//!   golden and gate stays byte-identical.
//! * **Fixed physical end time.**  Each scenario's `config(n1, n2,
//!   steps)` derives `dt = T_final / steps` from a per-family constant,
//!   so refining `steps` refines the timestep while every resolution
//!   integrates to the same physical time — the property the
//!   convergence study leans on.  (Hydro subcycles to its own CFL limit
//!   inside each radiation step, so any `dt` choice is stable.)

use std::fmt;

use v2d_comm::{Comm, ReduceOp};
use v2d_machine::MultiCostSink;

use crate::grid::{Geometry, Grid2};
use crate::hydro::eos::Prim;
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::sim::{HydroConfig, PrecondKind, V2dConfig, V2dSim};

use super::kelvin_helmholtz::KelvinHelmholtzScenario;
use super::multigroup::MultigroupScenario;
use super::radshock::RadShockScenario;
use super::sedov::SedovScenario;
use super::{GaussianPulse, MatterRelaxation, RadiativeRelaxation, SodTube};

/// The registered problem families, in registry (sweep) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// The paper's 2-D Gaussian radiation pulse (linear verification
    /// variant with the closed-form diffusion solution).
    Gaussian,
    /// Two radiation groups crossing an opacity step: each group
    /// diffuses a pulse at its own `D_s = c/(3κ_s)`.
    Multigroup,
    /// A radiative step front relaxing under linear diffusion (erfc
    /// closed form).
    RadShock,
    /// Uniform two-species radiative relaxation (exponential exchange
    /// decay).
    Relax,
    /// Marshak-style matter–radiation thermalization (0-D ODE
    /// reference).
    Marshak,
    /// The Sod shock tube (exact Riemann solution).
    Sod,
    /// A Sedov–Taylor blast in a closed box (conservation invariants +
    /// similarity radius).
    Sedov,
    /// A Kelvin–Helmholtz shear layer (seeded-mode growth).
    KelvinHelmholtz,
}

/// Every registered family, in sweep order.
pub const FAMILIES: [Family; 8] = [
    Family::Gaussian,
    Family::Multigroup,
    Family::RadShock,
    Family::Relax,
    Family::Marshak,
    Family::Sod,
    Family::Sedov,
    Family::KelvinHelmholtz,
];

impl Family {
    /// The registry key (what `[problem] family = …` matches).
    pub fn name(self) -> &'static str {
        match self {
            Family::Gaussian => "gaussian",
            Family::Multigroup => "multigroup",
            Family::RadShock => "radshock",
            Family::Relax => "relax",
            Family::Marshak => "marshak",
            Family::Sod => "sod",
            Family::Sedov => "sedov",
            Family::KelvinHelmholtz => "kelvin-helmholtz",
        }
    }

    /// Look a family up by name (a couple of common aliases included).
    pub fn parse(name: &str) -> Option<Family> {
        match name {
            "gaussian" | "pulse" => Some(Family::Gaussian),
            "multigroup" => Some(Family::Multigroup),
            "radshock" | "radiative-shock" => Some(Family::RadShock),
            "relax" | "relaxation" => Some(Family::Relax),
            "marshak" => Some(Family::Marshak),
            "sod" | "shock-tube" => Some(Family::Sod),
            "sedov" | "sedov-taylor" => Some(Family::Sedov),
            "kelvin-helmholtz" | "kh" => Some(Family::KelvinHelmholtz),
            _ => None,
        }
    }

    /// The comma-separated list of valid family names (for error
    /// messages and docs).
    pub fn valid_names() -> String {
        FAMILIES.iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
    }

    /// The scenario object for this family.
    pub fn scenario(self) -> &'static dyn Scenario {
        match self {
            Family::Gaussian => &GaussianScenario,
            Family::Multigroup => &MultigroupScenario,
            Family::RadShock => &RadShockScenario,
            Family::Relax => &RelaxScenario,
            Family::Marshak => &MarshakScenario,
            Family::Sod => &SodScenario,
            Family::Sedov => &SedovScenario,
            Family::KelvinHelmholtz => &KelvinHelmholtzScenario,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The graded outcome of one finished run.
///
/// The three norms are *relative* residuals whose meaning is
/// scenario-defined: analytic scenarios report field error norms against
/// the closed-form solution; invariant-graded scenarios (Sedov,
/// Kelvin–Helmholtz) report their conservation/feature residuals.
/// `pass` is the scenario's own aggregation of its checks; `tolerance`
/// is the bound applied to the leading norm (`l2` unless the scenario's
/// docs say otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The family that graded the run.
    pub family: &'static str,
    /// Relative L1 residual.
    pub l1: f64,
    /// Relative L2 residual (the leading norm for analytic scenarios).
    pub l2: f64,
    /// Relative L∞ residual.
    pub linf: f64,
    /// The bound applied to the leading norm.
    pub tolerance: f64,
    /// Did every check pass?
    pub pass: bool,
    /// Human-readable summary of the individual checks.
    pub detail: String,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} l1={:.3e} l2={:.3e} linf={:.3e} (tol {:.1e}) — {}",
            self.family,
            if self.pass { "PASS" } else { "FAIL" },
            self.l1,
            self.l2,
            self.linf,
            self.tolerance,
            self.detail
        )
    }
}

/// How a scenario's resolution triple `(n1, n2, steps)` is refined
/// between convergence-study levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refinement {
    /// Double the grid and quadruple the steps per level (`dt ∝ dx²` —
    /// the diffusion scaling).
    SpaceTime,
    /// Double the grid at a fixed step count (hydro subcycles to its
    /// own CFL limit, so spatial refinement refines the flow timestep
    /// implicitly).
    Space,
    /// Double the steps (halve `dt`) on a fixed grid.
    Time,
}

/// How the convergence study measures a scenario's error at each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceMode {
    /// Use the `l2` norm of [`Scenario::validate`] (an analytic
    /// reference exists).
    Analytic,
    /// No closed form: restrict each factor-2 finer [`study
    /// field`](Scenario::study_field) onto the coarser grid by 2×2
    /// block averaging and measure the L1 difference between
    /// consecutive levels.
    SelfConvergence,
}

/// A scenario's expected error-norm convergence behaviour.
#[derive(Debug, Clone, Copy)]
pub struct Convergence {
    /// Error measurement strategy.
    pub mode: ConvergenceMode,
    /// Refinement axis between levels.
    pub refine: Refinement,
    /// Level-0 resolution `(n1, n2, steps)`.
    pub base: (usize, usize, usize),
    /// The study asserts the measured order stays at or above this.
    pub min_order: f64,
}

impl Convergence {
    /// The resolution triple at refinement `level` (level 0 = `base`).
    pub fn level(&self, level: u32) -> (usize, usize, usize) {
        let (n1, n2, steps) = self.base;
        let g = 1usize << level;
        match self.refine {
            Refinement::SpaceTime => (n1 * g, n2 * g, steps * g * g),
            Refinement::Space => (n1 * g, n2 * g, steps),
            Refinement::Time => (n1, n2, steps * g),
        }
    }
}

/// One registered problem family: configuration, initial condition, and
/// the validation hook that grades a finished run.
///
/// Implementations must be pure: the same `(n1, n2, steps)` always
/// yields the same configuration and initial fields, so runs stay
/// bit-deterministic and replay/memoization over scenarios stays sound.
pub trait Scenario: Sync {
    /// The registry key of this scenario.
    fn family(&self) -> Family;

    /// One-line description for tables and docs.
    fn describe(&self) -> &'static str;

    /// The smoke resolution `(n1, n2, steps)`: small enough for every
    /// `cargo test`, fine enough that [`Scenario::validate`] passes.
    fn smoke(&self) -> (usize, usize, usize);

    /// The solver configuration at a resolution.  `dt` is derived from
    /// a fixed per-family end time (`dt = T_final / steps`).
    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig;

    /// Set this rank's initial fields (radiation, and hydro/temperature
    /// where the config enables them).
    fn init(&self, sim: &mut V2dSim);

    /// Grade the finished run.  Collective over `comm`: every rank
    /// contributes its tile and receives the same report.
    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport;

    /// The expected error-norm convergence behaviour (used by the
    /// nightly convergence study).
    fn convergence(&self) -> Convergence;

    /// The field the self-convergence mode restricts and compares
    /// (row-major over this rank's interior).  Defaults to radiation
    /// species 0; hydro scenarios override with a flow field.
    fn study_field(&self, sim: &V2dSim) -> Vec<f64> {
        let g = sim.grid();
        let mut out = Vec::with_capacity(g.n1 * g.n2);
        for i2 in 0..g.n2 {
            for i1 in 0..g.n1 {
                out.push(sim.erad().get(0, i1 as isize, i2 as isize));
            }
        }
        out
    }

    /// A complete parameter deck reproducing `config(n1, n2, steps)`
    /// under an `np1 × np2` topology, `[problem]` section included.
    fn deck(&self, n1: usize, n2: usize, steps: usize, np1: usize, np2: usize) -> String {
        deck_from_config(self.family(), &self.config(n1, n2, steps), np1, np2)
    }
}

/// Serialize a configuration into the strict `key = value` deck format,
/// with the `[problem]` section naming `family`.  Parsing the result
/// through [`crate::config_file::ParFile::to_config`] reproduces `cfg`
/// exactly (`f64` Display round-trips bit-for-bit).
pub fn deck_from_config(family: Family, cfg: &V2dConfig, np1: usize, np2: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let g = &cfg.grid;
    let _ = writeln!(out, "[problem]\nfamily = {}\n", family.name());
    let _ = writeln!(out, "[grid]\nn1 = {}\nn2 = {}", g.n1, g.n2);
    let _ = writeln!(out, "x1 = {} {}\nx2 = {} {}", g.x1min, g.x1max, g.x2min, g.x2max);
    let geometry = match g.geometry {
        Geometry::Cartesian => "cartesian",
        Geometry::CylindricalRZ => "cylindrical",
        Geometry::SphericalRTheta => "spherical",
    };
    let _ = writeln!(out, "geometry = {geometry}\n");
    let _ = writeln!(out, "[run]\ndt = {}\nn_steps = {}", cfg.dt, cfg.n_steps);
    let _ = writeln!(out, "nprx1 = {np1}\nnprx2 = {np2}\n");
    let limiter = match cfg.limiter {
        Limiter::None => "none",
        Limiter::LevermorePomraning => "levermore-pomraning",
        Limiter::Wilson => "wilson",
    };
    let _ = writeln!(out, "[radiation]\nlimiter = {limiter}");
    // Decks carry constant opacities only; every registered scenario
    // uses the constant model.
    let (ka, ks, kx) = match cfg.opacity {
        OpacityModel::Constant { kappa_a, kappa_s, kappa_x } => (kappa_a, kappa_s, kappa_x),
        OpacityModel::PowerLaw { kappa0, kappa1, .. } => (kappa0, kappa1, 0.0),
    };
    let _ = writeln!(
        out,
        "kappa_a = {} {}\nkappa_s = {} {}\nkappa_x = {}",
        ka[0], ka[1], ks[0], ks[1], kx
    );
    let precond = match cfg.precond {
        PrecondKind::None => "none",
        PrecondKind::Jacobi => "jacobi",
        PrecondKind::BlockJacobi => "block-jacobi",
        PrecondKind::Spai => "spai",
    };
    let _ = writeln!(out, "precond = {precond}");
    let _ = writeln!(out, "tol = {}\nmax_iters = {}", cfg.solve.tol, cfg.solve.max_iters);
    let _ = writeln!(out, "c_light = {}\n", cfg.c_light);
    if let Some(h) = cfg.hydro {
        let bc = |k: crate::hydro::BcKind| match k {
            crate::hydro::BcKind::Outflow => "outflow",
            crate::hydro::BcKind::Reflecting => "reflecting",
        };
        let _ = writeln!(out, "[hydro]\nenabled = true\ngamma = {}\ncfl = {}", h.gamma, h.cfl);
        let _ = writeln!(
            out,
            "bc_west = {}\nbc_east = {}\nbc_south = {}\nbc_north = {}\n",
            bc(h.bc.west),
            bc(h.bc.east),
            bc(h.bc.south),
            bc(h.bc.north)
        );
    }
    if let Some(cp) = cfg.coupling {
        let _ = writeln!(
            out,
            "[coupling]\nenabled = true\ncv = {}\na_rad = {}\nsplit = {} {}\n",
            cp.cv, cp.a_rad, cp.split[0], cp.split[1]
        );
    }
    out
}

// ---------------------------------------------------------------------
// Shared numerics: collective norms, erf, the exact Riemann solver, and
// the 0-D coupling ODE reference.
// ---------------------------------------------------------------------

/// Local accumulator for relative L1/L2/L∞ norms of `got − want`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormAccum {
    num1: f64,
    num2: f64,
    ninf: f64,
    den1: f64,
    den2: f64,
    dinf: f64,
}

impl NormAccum {
    /// Fold one sample pair into the accumulator.
    pub fn push(&mut self, got: f64, want: f64) {
        let e = got - want;
        self.num1 += e.abs();
        self.num2 += e * e;
        self.ninf = self.ninf.max(e.abs());
        self.den1 += want.abs();
        self.den2 += want * want;
        self.dinf = self.dinf.max(want.abs());
    }

    /// Reduce across ranks and form the relative norms `(l1, l2, linf)`.
    pub fn reduce(&self, comm: &Comm, sink: &mut MultiCostSink) -> (f64, f64, f64) {
        let sum = |sink: &mut MultiCostSink, v: f64| comm.allreduce_scalar(sink, ReduceOp::Sum, v);
        let max = |sink: &mut MultiCostSink, v: f64| comm.allreduce_scalar(sink, ReduceOp::Max, v);
        let num1 = sum(sink, self.num1);
        let num2 = sum(sink, self.num2);
        let ninf = max(sink, self.ninf);
        let den1 = sum(sink, self.den1).max(f64::MIN_POSITIVE);
        let den2 = sum(sink, self.den2).max(f64::MIN_POSITIVE);
        let dinf = max(sink, self.dinf).max(f64::MIN_POSITIVE);
        (num1 / den1, (num2 / den2).sqrt(), ninf / dinf)
    }
}

/// The error function, via Abramowitz & Stegun 7.1.26 (|ε| < 1.5e-7 —
/// far below every validation tolerance; `std` provides no `erf`).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The exact solution of the Riemann problem for the gamma-law Euler
/// equations (Toro ch. 4), sampled at similarity coordinate `xi = x/t`.
/// Returns the primitive state `(rho, u, p)` on the `x1` axis.
pub fn riemann_exact(left: Prim, right: Prim, gamma: f64, xi: f64) -> (f64, f64, f64) {
    let g = gamma;
    let (rho_l, u_l, p_l) = (left.rho, left.u1, left.p);
    let (rho_r, u_r, p_r) = (right.rho, right.u1, right.p);
    let c_l = (g * p_l / rho_l).sqrt();
    let c_r = (g * p_r / rho_r).sqrt();

    // f_K(p): the velocity jump across the left/right wave as a function
    // of the star pressure, with its derivative (Toro eqs. 4.6–4.7).
    let fk = |p: f64, p_k: f64, rho_k: f64, c_k: f64| -> (f64, f64) {
        if p > p_k {
            // Shock branch.
            let a_k = 2.0 / ((g + 1.0) * rho_k);
            let b_k = (g - 1.0) / (g + 1.0) * p_k;
            let root = (a_k / (p + b_k)).sqrt();
            let f = (p - p_k) * root;
            let df = root * (1.0 - 0.5 * (p - p_k) / (p + b_k));
            (f, df)
        } else {
            // Rarefaction branch.
            let pr = p / p_k;
            let f = 2.0 * c_k / (g - 1.0) * (pr.powf((g - 1.0) / (2.0 * g)) - 1.0);
            let df = 1.0 / (rho_k * c_k) * pr.powf(-(g + 1.0) / (2.0 * g));
            (f, df)
        }
    };

    // Star pressure by Newton iteration from the PV (primitive-variable)
    // guess, floored to stay positive.
    let mut p_star = (0.5 * (p_l + p_r) - 0.125 * (u_r - u_l) * (rho_l + rho_r) * (c_l + c_r))
        .max(1e-8 * (p_l + p_r));
    for _ in 0..60 {
        let (f_l, df_l) = fk(p_star, p_l, rho_l, c_l);
        let (f_r, df_r) = fk(p_star, p_r, rho_r, c_r);
        let f = f_l + f_r + (u_r - u_l);
        let step = f / (df_l + df_r);
        let next = (p_star - step).max(1e-10 * p_star);
        if ((next - p_star) / (0.5 * (next + p_star))).abs() < 1e-14 {
            p_star = next;
            break;
        }
        p_star = next;
    }
    let (f_l, _) = fk(p_star, p_l, rho_l, c_l);
    let (f_r, _) = fk(p_star, p_r, rho_r, c_r);
    let u_star = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l);

    // Sample (Toro §4.5).
    if xi <= u_star {
        // Left of the contact.
        if p_star > p_l {
            // Left shock.
            let ms =
                u_l - c_l * ((g + 1.0) / (2.0 * g) * p_star / p_l + (g - 1.0) / (2.0 * g)).sqrt();
            if xi <= ms {
                (rho_l, u_l, p_l)
            } else {
                let pr = p_star / p_l;
                let gr = (g - 1.0) / (g + 1.0);
                (rho_l * (pr + gr) / (gr * pr + 1.0), u_star, p_star)
            }
        } else {
            // Left rarefaction.
            let c_star = c_l * (p_star / p_l).powf((g - 1.0) / (2.0 * g));
            let (head, tail) = (u_l - c_l, u_star - c_star);
            if xi <= head {
                (rho_l, u_l, p_l)
            } else if xi >= tail {
                (rho_l * (p_star / p_l).powf(1.0 / g), u_star, p_star)
            } else {
                let u = 2.0 / (g + 1.0) * (c_l + (g - 1.0) / 2.0 * u_l + xi);
                let c = 2.0 / (g + 1.0) * (c_l + (g - 1.0) / 2.0 * (u_l - xi));
                (
                    rho_l * (c / c_l).powf(2.0 / (g - 1.0)),
                    u,
                    p_l * (c / c_l).powf(2.0 * g / (g - 1.0)),
                )
            }
        }
    } else {
        // Right of the contact (mirror).
        if p_star > p_r {
            let ms =
                u_r + c_r * ((g + 1.0) / (2.0 * g) * p_star / p_r + (g - 1.0) / (2.0 * g)).sqrt();
            if xi >= ms {
                (rho_r, u_r, p_r)
            } else {
                let pr = p_star / p_r;
                let gr = (g - 1.0) / (g + 1.0);
                (rho_r * (pr + gr) / (gr * pr + 1.0), u_star, p_star)
            }
        } else {
            let c_star = c_r * (p_star / p_r).powf((g - 1.0) / (2.0 * g));
            let (head, tail) = (u_r + c_r, u_star + c_star);
            if xi >= head {
                (rho_r, u_r, p_r)
            } else if xi <= tail {
                (rho_r * (p_star / p_r).powf(1.0 / g), u_star, p_star)
            } else {
                let u = 2.0 / (g + 1.0) * (-c_r + (g - 1.0) / 2.0 * u_r + xi);
                let c = 2.0 / (g + 1.0) * (c_r - (g - 1.0) / 2.0 * (u_r - xi));
                (
                    rho_r * (c / c_r).powf(2.0 / (g - 1.0)),
                    u,
                    p_r * (c / c_r).powf(2.0 * g / (g - 1.0)),
                )
            }
        }
    }
}

/// Fine-step RK4 reference for the 0-D matter–radiation coupling ODE
///
/// ```text
/// dE_s/dt = c κ_a,s (B_s(T) − E_s),  c_v dT/dt = −Σ_s c κ_a,s (B_s(T) − E_s)
/// ```
///
/// Returns `(E_0, E_1, T)` at `t_final`, using `n` substeps (the RK4
/// truncation error is O((t/n)⁴), negligible next to the solver's
/// first-order splitting error for any reasonable `n`).
pub fn coupling_ode_reference(
    e0: [f64; 2],
    t0: f64,
    c_light: f64,
    kappa_a: [f64; 2],
    coupling: &crate::rad::coupling::MatterCoupling,
    t_final: f64,
    n: usize,
) -> ([f64; 2], f64) {
    let rhs = |y: [f64; 3]| -> [f64; 3] {
        let t = y[2];
        let mut dy = [0.0; 3];
        let mut gas = 0.0;
        for s in 0..2 {
            let drive = c_light * kappa_a[s] * (coupling.emission(s, t) - y[s]);
            dy[s] = drive;
            gas -= drive;
        }
        dy[2] = gas / coupling.cv;
        dy
    };
    let mut y = [e0[0], e0[1], t0];
    let h = t_final / n as f64;
    for _ in 0..n {
        let k1 = rhs(y);
        let k2 = rhs([y[0] + 0.5 * h * k1[0], y[1] + 0.5 * h * k1[1], y[2] + 0.5 * h * k1[2]]);
        let k3 = rhs([y[0] + 0.5 * h * k2[0], y[1] + 0.5 * h * k2[1], y[2] + 0.5 * h * k2[2]]);
        let k4 = rhs([y[0] + h * k3[0], y[1] + h * k3[1], y[2] + h * k3[2]]);
        for i in 0..3 {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    ([y[0], y[1]], y[2])
}

// ---------------------------------------------------------------------
// The four legacy problems as scenarios.
// ---------------------------------------------------------------------

/// Physical end time of the Gaussian-pulse scenario (chosen so the
/// proven 40×20×24 verification setting falls out at `dt = 0.00125`).
pub const T_GAUSSIAN: f64 = 0.03;

/// The paper's pulse as a registry scenario: the *linear* configuration
/// (no limiter, pure scattering) where the closed-form diffusion
/// solution grades the run.
pub struct GaussianScenario;

impl Scenario for GaussianScenario {
    fn family(&self) -> Family {
        Family::Gaussian
    }

    fn describe(&self) -> &'static str {
        "2-D Gaussian radiation pulse vs the closed-form linear-diffusion solution"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (40, 20, 24)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        let mut cfg = GaussianPulse::linear_config(n1, n2, steps);
        cfg.dt = T_GAUSSIAN / steps as f64;
        cfg
    }

    fn init(&self, sim: &mut V2dSim) {
        // Exactly the legacy initial condition: every pre-registry
        // golden and gate depends on these bits.
        GaussianPulse::standard().init(sim);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let pulse = GaussianPulse::standard();
        let d = GaussianPulse::linear_diffusion_coefficient(sim.config());
        let t = sim.time();
        let grid = sim.grid();
        let mut acc = NormAccum::default();
        for s in 0..v2d_linalg::NSPEC {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (x, y) = grid.center(i1, i2);
                    acc.push(
                        sim.erad().get(s, i1 as isize, i2 as isize),
                        pulse.analytic(d, x, y, t),
                    );
                }
            }
        }
        let (l1, l2, linf) = acc.reduce(comm, sink);
        let tolerance = 0.05;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l2 < tolerance,
            detail: format!("field vs analytic diffusion at t={t:.4}"),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::SpaceTime,
            base: (32, 16, 12),
            min_order: 1.5,
        }
    }
}

/// Physical end time of the relaxation scenario (the proven 8×8×50
/// verification setting falls out at `dt = 0.01`).
pub const T_RELAX: f64 = 0.5;

fn relax_problem() -> RadiativeRelaxation {
    RadiativeRelaxation { e0: 2.0, e1: 1.0, kappa_x: 0.5 }
}

/// Two-species radiative relaxation as a registry scenario.
pub struct RelaxScenario;

impl Scenario for RelaxScenario {
    fn family(&self) -> Family {
        Family::Relax
    }

    fn describe(&self) -> &'static str {
        "uniform two-species exchange relaxation vs the exponential decay law"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (8, 8, 50)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        let mut cfg = relax_problem().config(n1, n2, T_RELAX / steps as f64, steps);
        // The legacy κ_s = 1e4 leaves a measurable Dirichlet-0 wall leak
        // (~2e-3 in the first zone over T_RELAX); 1e8 pushes it below
        // 1e-6 so the per-zone sum-conservation gate stays sharp.
        if let OpacityModel::Constant { ref mut kappa_s, .. } = cfg.opacity {
            *kappa_s = [1e8, 1e8];
        }
        cfg
    }

    fn init(&self, sim: &mut V2dSim) {
        relax_problem().init(sim);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let prob = relax_problem();
        let want = prob.analytic_difference(sim.config().c_light, sim.time());
        let de0 = prob.e0 - prob.e1;
        let sum0 = prob.e0 + prob.e1;
        let grid = sim.grid();
        // The fields are uniform; grade ΔE per zone against the decay
        // law (normalized by ΔE(0)) and the sum against conservation.
        let mut acc = NormAccum::default();
        let mut sum_drift = 0.0f64;
        for i2 in 0..grid.n2 {
            for i1 in 0..grid.n1 {
                let a = sim.erad().get(0, i1 as isize, i2 as isize);
                let b = sim.erad().get(1, i1 as isize, i2 as isize);
                acc.push((a - b) / de0, want / de0);
                sum_drift = sum_drift.max(((a + b) - sum0).abs() / sum0);
            }
        }
        let (l1, l2, linf) = acc.reduce(comm, sink);
        let sum_drift = comm.allreduce_scalar(sink, ReduceOp::Max, sum_drift);
        let tolerance = 0.02;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l2 < tolerance && sum_drift < 1e-6,
            detail: format!("ΔE decay vs exp(-2κxc t); sum drift {sum_drift:.2e}"),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::Time,
            base: (8, 8, 25),
            min_order: 0.85,
        }
    }
}

/// Physical end time of the Marshak scenario (the proven 8×8×300
/// verification setting integrates to t = 6).
pub const T_MARSHAK: f64 = 6.0;

/// Marshak-style thermalization as a registry scenario, graded against
/// a fine-step RK4 integration of the 0-D coupling ODE.
pub struct MarshakScenario;

impl Scenario for MarshakScenario {
    fn family(&self) -> Family {
        Family::Marshak
    }

    fn describe(&self) -> &'static str {
        "matter-radiation thermalization vs the 0-D coupling ODE (RK4 reference)"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (8, 8, 120)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        let mut cfg = MatterRelaxation::standard().config(n1, n2, T_MARSHAK / steps as f64, steps);
        // As in the relaxation scenario: suppress the Dirichlet-0 wall
        // leak (a dt-independent error floor that would flatten the
        // time-refinement convergence study).
        if let OpacityModel::Constant { ref mut kappa_s, .. } = cfg.opacity {
            *kappa_s = [1e8, 1e8];
        }
        cfg
    }

    fn init(&self, sim: &mut V2dSim) {
        MatterRelaxation::standard().init(sim);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let prob = MatterRelaxation::standard();
        let cfg = sim.config();
        let kappa_a = match cfg.opacity {
            OpacityModel::Constant { kappa_a, .. } => kappa_a,
            OpacityModel::PowerLaw { kappa0, .. } => kappa0,
        };
        let (e_ref, t_ref) = coupling_ode_reference(
            prob.e0,
            prob.t0,
            cfg.c_light,
            kappa_a,
            &prob.coupling,
            sim.time(),
            20_000,
        );
        let grid = sim.grid();
        // Uniform fields: grade every zone's (E0, E1, T) triple against
        // the ODE reference.
        let mut acc = NormAccum::default();
        for i2 in 0..grid.n2 {
            for i1 in 0..grid.n1 {
                let (i1, i2) = (i1 as isize, i2 as isize);
                acc.push(sim.erad().get(0, i1, i2), e_ref[0]);
                acc.push(sim.erad().get(1, i1, i2), e_ref[1]);
                if let Some(temp) = sim.temperature() {
                    acc.push(temp.get(i1, i2), t_ref);
                }
            }
        }
        let (l1, l2, linf) = acc.reduce(comm, sink);
        let tolerance = 0.05;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l2 < tolerance,
            detail: format!(
                "(E0,E1,T) vs RK4 ODE; T_eq analytic {:.4}",
                prob.equilibrium_temperature()
            ),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::Time,
            base: (8, 8, 60),
            min_order: 0.8,
        }
    }
}

/// Physical end time of the Sod scenario: waves stay well inside the
/// unit tube.
pub const T_SOD: f64 = 0.12;

/// The Sod shock tube as a registry scenario, graded against the exact
/// Riemann solution.
pub struct SodScenario;

impl Scenario for SodScenario {
    fn family(&self) -> Family {
        Family::Sod
    }

    fn describe(&self) -> &'static str {
        "Sod shock tube vs the exact Riemann solution (density L1)"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (64, 4, 12)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        SodTube::config(n1, n2, steps, T_SOD / steps as f64)
    }

    fn init(&self, sim: &mut V2dSim) {
        SodTube::standard().init(sim);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let tube = SodTube::standard();
        let cfg = sim.config();
        let gamma = cfg.hydro.map_or(1.4, |h| h.gamma);
        let t = sim.time();
        let grid = sim.grid();
        let x1span = grid.global.x1max - grid.global.x1min;
        let x0 = grid.global.x1min + tube.interface * x1span;
        let mut acc = NormAccum::default();
        if let Some(state) = sim.hydro() {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (g1, _) = grid.to_global(i1, i2);
                    let x = grid.global.x1c(g1);
                    let (rho, _, _) = riemann_exact(tube.left, tube.right, gamma, (x - x0) / t);
                    acc.push(state.rho.get(i1 as isize, i2 as isize), rho);
                }
            }
        }
        let (l1, l2, linf) = acc.reduce(comm, sink);
        let tolerance = 0.05;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l1 < tolerance,
            detail: format!("rho vs exact Riemann at t={t:.4} (leading norm: l1)"),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::Space,
            base: (32, 4, 12),
            min_order: 0.6,
        }
    }

    fn study_field(&self, sim: &V2dSim) -> Vec<f64> {
        hydro_rho(sim)
    }
}

/// The density field, row-major over this rank's interior (shared by
/// the hydro scenarios' study hooks).
pub(crate) fn hydro_rho(sim: &V2dSim) -> Vec<f64> {
    let g = sim.grid();
    let mut out = Vec::with_capacity(g.n1 * g.n2);
    if let Some(state) = sim.hydro() {
        for i2 in 0..g.n2 {
            for i1 in 0..g.n1 {
                out.push(state.rho.get(i1 as isize, i2 as isize));
            }
        }
    }
    out
}

/// Shared helper for hydro scenario configs: Sod-style passive
/// radiation (the update still runs — it is part of the code path — but
/// with negligible energy), hydro enabled with the given BC.
pub(crate) fn hydro_config(
    n1: usize,
    n2: usize,
    steps: usize,
    dt: f64,
    extent: [(f64, f64); 2],
    gamma: f64,
    bc: crate::hydro::HydroBc,
) -> V2dConfig {
    V2dConfig {
        grid: Grid2::new(n1, n2, extent[0], extent[1], Geometry::Cartesian),
        limiter: Limiter::LevermorePomraning,
        opacity: OpacityModel::test_problem(),
        c_light: 1.0,
        dt,
        n_steps: steps,
        precond: PrecondKind::BlockJacobi,
        solve: v2d_linalg::SolveOpts::default(),
        hydro: Some(HydroConfig { gamma, cfl: 0.4, bc }),
        coupling: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_total_and_names_round_trip() {
        for f in FAMILIES {
            assert_eq!(Family::parse(f.name()), Some(f), "{f} must parse back");
            assert_eq!(f.scenario().family(), f, "{f} scenario must self-identify");
        }
        assert_eq!(Family::parse("warp-drive"), None);
        assert!(Family::valid_names().contains("sedov"));
        assert!(Family::valid_names().contains("kelvin-helmholtz"));
    }

    #[test]
    fn erf_matches_known_values() {
        // erf(0)=0, erf(∞)→1, erf(1)≈0.8427007929 (A&S 7.1.26 is
        // accurate to ~1.5e-7, including a tiny residual at x=0).
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(3.0) - 0.999_977_909_5).abs() < 2e-7);
        assert!((erfc(0.5) - 0.479_500_122).abs() < 2e-7);
    }

    #[test]
    fn riemann_solver_reproduces_sod_star_state() {
        // Toro's Test 1 (the Sod tube): p* = 0.30313, u* = 0.92745,
        // rho*L = 0.42632, rho*R = 0.26557 (Toro Table 4.3).
        let tube = SodTube::standard();
        let (rho, u, p) = riemann_exact(tube.left, tube.right, 1.4, 0.5);
        // ξ = 0.5 sits between the contact (0.927) — no: 0.5 < u*, so
        // this is the left star region.
        assert!((p - 0.30313).abs() < 1e-4, "p* = {p}");
        assert!((u - 0.92745).abs() < 1e-4, "u* = {u}");
        assert!((rho - 0.42632).abs() < 1e-4, "rho*L = {rho}");
        // Right star region: between the contact and the shock.
        let (rho_r, _, _) = riemann_exact(tube.left, tube.right, 1.4, 1.2);
        assert!((rho_r - 0.26557).abs() < 1e-4, "rho*R = {rho_r}");
        // Far field untouched.
        let (rho_far, _, _) = riemann_exact(tube.left, tube.right, 1.4, 5.0);
        assert!((rho_far - 0.125).abs() < 1e-12);
        let (rho_far, _, _) = riemann_exact(tube.left, tube.right, 1.4, -5.0);
        assert!((rho_far - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coupling_ode_reference_conserves_energy_and_equilibrates() {
        let p = MatterRelaxation::standard();
        let (e, t) =
            coupling_ode_reference(p.e0, p.t0, 1.0, [0.4, 0.4], &p.coupling, 100.0, 50_000);
        let t_eq = p.equilibrium_temperature();
        assert!((t - t_eq).abs() < 1e-6, "ODE must reach the analytic equilibrium: {t} vs {t_eq}");
        let total0 = p.coupling.cv * p.t0 + p.e0.iter().sum::<f64>();
        let total1 = p.coupling.cv * t + e[0] + e[1];
        assert!(((total1 - total0) / total0).abs() < 1e-9, "budget drift");
    }

    #[test]
    fn convergence_levels_follow_the_refinement_axis() {
        let c = Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::SpaceTime,
            base: (16, 8, 4),
            min_order: 1.0,
        };
        assert_eq!(c.level(0), (16, 8, 4));
        assert_eq!(c.level(1), (32, 16, 16));
        assert_eq!(c.level(2), (64, 32, 64));
        let c = Convergence { refine: Refinement::Space, ..c };
        assert_eq!(c.level(2), (64, 32, 4));
        let c = Convergence { refine: Refinement::Time, ..c };
        assert_eq!(c.level(2), (16, 8, 16));
    }

    #[test]
    fn decks_name_their_family_and_parse() {
        for f in FAMILIES {
            let deck = f.scenario().deck(16, 8, 4, 2, 1);
            let pf = crate::config_file::ParFile::parse(&deck)
                .unwrap_or_else(|e| panic!("{f} deck must parse: {e}\n{deck}"));
            assert_eq!(pf.get("problem.family"), Some(f.name()));
            let (cfg, (np1, np2)) = pf
                .to_config()
                .unwrap_or_else(|e| panic!("{f} deck must build a config: {e}\n{deck}"));
            assert_eq!((np1, np2), (2, 1));
            let reference = f.scenario().config(16, 8, 4);
            assert_eq!(cfg.dt.to_bits(), reference.dt.to_bits(), "{f}: dt must round-trip");
            assert_eq!(cfg.n_steps, reference.n_steps);
            assert_eq!(cfg.grid.n1, reference.grid.n1);
            assert_eq!(
                cfg.hydro.is_some(),
                reference.hydro.is_some(),
                "{f}: hydro flag must round-trip"
            );
            assert_eq!(
                cfg.coupling.is_some(),
                reference.coupling.is_some(),
                "{f}: coupling must round-trip"
            );
        }
    }
}
