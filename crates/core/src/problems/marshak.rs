//! Matter–radiation relaxation ("Marshak-style" thermalization): a
//! closed, optically thick box where cold gas and hot radiation relax
//! toward the joint equilibrium
//!
//! ```text
//! E_s^eq = f_s · a · (T^eq)⁴,   c_v T^eq + a (T^eq)⁴ = c_v T⁰ + Σ_s E_s⁰
//! ```
//!
//! (total energy conservation plus emission/absorption balance).  This
//! exercises the full V2D code path the Table I benchmark freezes: the
//! emission source feeds the implicit radiation solve and the Newton
//! matter update closes the exchange.

use v2d_linalg::SolveOpts;

use crate::grid::{Geometry, Grid2};
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::rad::coupling::MatterCoupling;
use crate::sim::{PrecondKind, V2dConfig, V2dSim};

/// Uniform initial state for the thermalization problem.
#[derive(Debug, Clone, Copy)]
pub struct MatterRelaxation {
    /// Initial radiation energy per species.
    pub e0: [f64; 2],
    /// Initial gas temperature.
    pub t0: f64,
    /// The coupling closure.
    pub coupling: MatterCoupling,
}

impl MatterRelaxation {
    /// A standard hot-radiation / cold-gas setup.
    pub fn standard() -> Self {
        MatterRelaxation {
            e0: [1.0, 1.0],
            t0: 0.5,
            coupling: MatterCoupling::new(1.0, 1.0, [0.5, 0.5]),
        }
    }

    /// The configuration: optically thick (huge scattering kills
    /// boundary diffusion losses), moderate absorption driving the
    /// exchange.
    pub fn config(&self, n1: usize, n2: usize, dt: f64, n_steps: usize) -> V2dConfig {
        V2dConfig {
            grid: Grid2::new(n1, n2, (0.0, 1.0), (0.0, 1.0), Geometry::Cartesian),
            limiter: Limiter::None,
            opacity: OpacityModel::Constant {
                kappa_a: [0.4, 0.4],
                kappa_s: [1e4, 1e4],
                kappa_x: 0.0,
            },
            c_light: 1.0,
            dt,
            n_steps,
            precond: PrecondKind::BlockJacobi,
            solve: SolveOpts { tol: 1e-12, ..Default::default() },
            hydro: None,
            coupling: Some(self.coupling),
        }
    }

    /// Set the uniform initial fields.
    pub fn init(&self, sim: &mut V2dSim) {
        let e0 = self.e0;
        sim.erad_mut().fill_with(|s, _, _| e0[s]);
        let t0 = self.t0;
        // The problem's own config() always enables coupling; a caller
        // who disabled it gets radiation-only initial conditions.
        if let Some(temp) = sim.temperature_mut() {
            temp.fill_with(|_, _| t0);
        }
    }

    /// The equilibrium temperature: solves
    /// `c_v T + a T⁴ = c_v T⁰ + ΣE⁰` by bisection.
    pub fn equilibrium_temperature(&self) -> f64 {
        let cp = &self.coupling;
        let budget = cp.cv * self.t0 + self.e0.iter().sum::<f64>();
        let f = |t: f64| cp.cv * t + cp.a_rad * t.powi(4) - budget;
        let (mut lo, mut hi) = (0.0, budget / cp.cv + 1.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    #[test]
    fn equilibrium_temperature_solves_the_budget() {
        let p = MatterRelaxation::standard();
        let t = p.equilibrium_temperature();
        let cp = &p.coupling;
        let budget = cp.cv * p.t0 + 2.0;
        assert!((cp.cv * t + cp.a_rad * t.powi(4) - budget).abs() < 1e-10);
    }

    #[test]
    fn gas_and_radiation_thermalize_and_conserve_energy() {
        let p = MatterRelaxation::standard();
        // Small dt keeps the first-order splitting error in the energy
        // budget below the assertion tolerance.
        let cfg = p.config(8, 8, 0.02, 300);
        Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let map = TileMap::new(8, 8, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            p.init(&mut sim);
            let total0 = p.coupling.cv * p.t0 + p.e0.iter().sum::<f64>();
            sim.run(&ctx.comm, &mut ctx.sink);

            let t = sim.temperature().unwrap().get(4, 4);
            let e0 = sim.erad().get(0, 4, 4);
            let e1 = sim.erad().get(1, 4, 4);
            let t_eq = p.equilibrium_temperature();
            assert!(
                (t - t_eq).abs() < 0.02 * t_eq,
                "gas did not thermalize: T = {t}, expected {t_eq}"
            );
            // Radiation must sit on the Planck curve per species.
            for (s, e) in [e0, e1].into_iter().enumerate() {
                let want = p.coupling.emission(s, t);
                assert!(
                    (e - want).abs() < 0.03 * want,
                    "species {s} off the emission curve: {e} vs {want}"
                );
            }
            // Total (gas + radiation) energy conserved up to the tiny
            // boundary diffusion loss.
            let total1 = p.coupling.cv * t + e0 + e1;
            assert!(
                ((total1 - total0) / total0).abs() < 0.015,
                "energy budget broken: {total0} → {total1}"
            );
        });
    }

    #[test]
    fn cold_radiation_heats_from_hot_gas() {
        // Reverse direction: hot gas, cold radiation.
        let p = MatterRelaxation {
            e0: [1e-4, 1e-4],
            t0: 1.5,
            coupling: MatterCoupling::new(2.0, 0.5, [0.7, 0.3]),
        };
        let cfg = p.config(6, 6, 0.05, 150);
        Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let map = TileMap::new(6, 6, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            p.init(&mut sim);
            sim.run(&ctx.comm, &mut ctx.sink);
            let t = sim.temperature().unwrap().get(3, 3);
            assert!(t < p.t0, "gas should cool while radiating: T = {t}");
            let e0 = sim.erad().get(0, 3, 3);
            let e1 = sim.erad().get(1, 3, 3);
            assert!(e0 > 1e-3 && e1 > 1e-3, "radiation field did not heat: {e0}, {e1}");
            // Uneven split: species 0 receives more.
            assert!(e0 > e1, "split ordering violated: {e0} vs {e1}");
        });
    }
}
