//! A radiative step front: a discontinuity in the radiation field
//! relaxing under linear flux-limited diffusion in a Dirichlet-walled
//! channel.
//!
//! With `Limiter::None` and constant pure-scattering opacity the FLD
//! update is *exactly* linear diffusion with `D = c/(3κ_s)`.  The
//! radiation boundary is a zero ghost frame, i.e. homogeneous Dirichlet
//! at the ghost *centers* — half a zone beyond each face.  The initial
//! condition is built separable against exactly that operator:
//!
//! ```text
//! E(x, y, 0) = step(x) · sin(π (y − y_g) / H_eff)
//! ```
//!
//! where `y_g = x2min − Δy/2` and `H_eff = H + Δy` put the sine's zeros
//! on the ghost centers — the transverse profile is an eigenvector of
//! the discrete y-operator at every resolution.  Constant-coefficient
//! splitting on a uniform grid makes the x- and y-operators commute, so
//! the evolved field stays a product:
//!
//! ```text
//! E(x, y, t) = [E_R + (E_L−E_R)/2 · erfc((x−x₀)/√(4Dt))]
//!              · sin(π (y − y_g)/H_eff) · exp(−D (π/H_eff)² t)
//! ```
//!
//! valid while the front stays several diffusion lengths from the
//! x-walls (validation grades a window around the front; the wall
//! imprint there is < 2e-4).  The jump sits exactly on a cell face at
//! every even resolution (x₀ = 0.5 on a unit domain), so the sampled
//! initial condition carries no O(Δx) front-placement error and the
//! scheme converges at second order under `Δt ∝ Δx²` refinement — this
//! scenario pins the x-flux, the y-flux, *and* the wall discretization
//! in one closed form.

use v2d_comm::Comm;
use v2d_linalg::SolveOpts;
use v2d_machine::MultiCostSink;

use crate::grid::{Geometry, Grid2};
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::sim::{PrecondKind, V2dConfig, V2dSim};

use super::scenario::{
    erfc, Convergence, ConvergenceMode, Family, NormAccum, Refinement, Scenario, ValidationReport,
};

/// Physical end time: front width √(4DT) ≈ 0.094, x-walls > 5 widths
/// from the graded window.
pub const T_RADSHOCK: f64 = 0.02;

/// Upstream radiation energy.
pub const E_LEFT: f64 = 1.0;
/// Downstream radiation energy (positive: the limiter-free solve is
/// linear, but positivity keeps the config reusable with limiters on).
pub const E_RIGHT: f64 = 0.01;

/// Front position (a cell face at every even `n1` on the unit domain).
pub const X_FRONT: f64 = 0.5;

/// Scattering opacity (both species — one front, one closed form).
pub const KAPPA_S: f64 = 3.0;

/// Half-width of the graded window around the front.
pub const WINDOW: f64 = 0.25;

/// The radiative step-front scenario.
pub struct RadShockScenario;

/// The transverse channel mode and its decay rate for the grid's
/// discrete Dirichlet frame: `(sin(π(y−y_g)/H_eff), (π/H_eff)²)` with
/// the zeros on the ghost centers.
fn channel_mode(grid: &Grid2, y: f64) -> (f64, f64) {
    let dy = (grid.x2max - grid.x2min) / grid.n2 as f64;
    let h_eff = (grid.x2max - grid.x2min) + dy;
    let k = std::f64::consts::PI / h_eff;
    ((k * (y - (grid.x2min - 0.5 * dy))).sin(), k * k)
}

impl RadShockScenario {
    /// The linear diffusion coefficient `c/(3κ_s)`.
    pub fn diffusion(cfg: &V2dConfig) -> f64 {
        let ks = match cfg.opacity {
            OpacityModel::Constant { kappa_s, .. } => kappa_s[0],
            OpacityModel::PowerLaw { kappa1, .. } => kappa1[0],
        };
        cfg.c_light / (3.0 * ks)
    }

    /// The separable closed form at `(x, y, t)` on `grid`.
    pub fn analytic(grid: &Grid2, d: f64, x: f64, y: f64, t: f64) -> f64 {
        let xpart = E_RIGHT + 0.5 * (E_LEFT - E_RIGHT) * erfc((x - X_FRONT) / (4.0 * d * t).sqrt());
        let (ymode, k2) = channel_mode(grid, y);
        xpart * ymode * (-d * k2 * t).exp()
    }
}

impl Scenario for RadShockScenario {
    fn family(&self) -> Family {
        Family::RadShock
    }

    fn describe(&self) -> &'static str {
        "radiative step front in a Dirichlet channel vs the separable erfc x sine closed form"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (48, 6, 12)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        V2dConfig {
            grid: Grid2::new(n1, n2, (0.0, 1.0), (0.0, 0.25), Geometry::Cartesian),
            limiter: Limiter::None,
            opacity: OpacityModel::Constant {
                kappa_a: [0.0, 0.0],
                kappa_s: [KAPPA_S, KAPPA_S],
                kappa_x: 0.0,
            },
            c_light: 1.0,
            dt: T_RADSHOCK / steps as f64,
            n_steps: steps,
            precond: PrecondKind::BlockJacobi,
            solve: SolveOpts { tol: 1e-12, ..Default::default() },
            hydro: None,
            coupling: None,
        }
    }

    fn init(&self, sim: &mut V2dSim) {
        let grid = *sim.grid();
        sim.erad_mut().fill_with(|_, i1, i2| {
            let (x, y) = grid.center(i1, i2);
            let (ymode, _) = channel_mode(&grid.global, y);
            (if x < X_FRONT { E_LEFT } else { E_RIGHT }) * ymode
        });
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let d = Self::diffusion(sim.config());
        let t = sim.time();
        let grid = sim.grid();
        let mut acc = NormAccum::default();
        for s in 0..v2d_linalg::NSPEC {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (x, y) = grid.center(i1, i2);
                    // Grade the window around the front only: the
                    // closed form ignores the x-walls, whose imprint at
                    // > 2.5 front-widths is < 2e-4.
                    if (x - X_FRONT).abs() > WINDOW {
                        continue;
                    }
                    acc.push(
                        sim.erad().get(s, i1 as isize, i2 as isize),
                        Self::analytic(&grid.global, d, x, y, t),
                    );
                }
            }
        }
        let (l1, l2, linf) = acc.reduce(comm, sink);
        let tolerance = 0.05;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l2 < tolerance,
            detail: format!("step front vs erfc x sine at t={t:.4} (D={d:.4})"),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::Analytic,
            refine: Refinement::SpaceTime,
            base: (24, 6, 6),
            min_order: 1.2,
        }
    }
}
