//! A Kelvin–Helmholtz shear layer: two counter-flowing streams with a
//! density contrast, seeded with a single transverse mode.
//!
//! The box is open (outflow) along the flow and walled (reflecting)
//! across it.  At affordable resolutions the HLL Riemann solver's shear
//! diffusion puts the layer's effective Reynolds number (ΔU·w/ν_num ≈ 3
//! at 48×32) far below the KH critical value, so the seeded mode
//! responds viscously instead of rolling up — a growth-rate measurement
//! would validate nothing real.  What the dynamics *do* produce
//! deterministically is shear-momentum mixing: the counter-flowing
//! streams exchange x-momentum and the streamwise kinetic energy decays
//! by a finite, resolution-dependent fraction, while mass and total
//! energy are conserved to the (small) outflow losses.  Validation
//! grades those three quantities; the bit-exact bench gates pin the
//! full trajectory, so any dynamical regression is caught twice.  The
//! convergence study self-converges the density field under spatial
//! refinement.

use v2d_comm::{Comm, ReduceOp};
use v2d_machine::MultiCostSink;

use crate::hydro::eos::Prim;
use crate::hydro::{GammaLaw, HydroBc};
use crate::sim::{V2dConfig, V2dSim};

use super::scenario::{
    hydro_config, hydro_rho, Convergence, ConvergenceMode, Family, Refinement, Scenario,
    ValidationReport,
};

/// Physical end time: a few e-folds of the seeded mode, short of full
/// nonlinear saturation at smoke resolution.
pub const T_KH: f64 = 0.8;

/// Shear half-velocity (streams run at ±U_SHEAR).
pub const U_SHEAR: f64 = 0.5;
/// Inner-band density (outer band is 1).
pub const RHO_INNER: f64 = 2.0;
/// Uniform pressure.
pub const P0: f64 = 2.5;
/// Shear-layer thickness of the tanh profile (≥2.5 zones at the smoke
/// resolution).
pub const LAYER_W: f64 = 0.08;
/// Seed amplitude of the transverse velocity perturbation.
pub const SEED_AMP: f64 = 0.01;

/// Accepted band for the shear-momentum mixing fraction
/// `1 − Kx(T)/Kx(0)`: it is robustly positive at every resolution (the
/// layer always thickens — measured 0.07 at 96×64 up to 0.53 at 24×16)
/// and bounded well below full mixing over `T_KH`.
pub const MIX_BAND: (f64, f64) = (0.005, 0.8);

/// Sanity band for the transverse-KE response `Ky(T)/Ky(0)`: in the
/// viscously stable regime the seed decays, but it must neither vanish
/// (dead dynamics) nor blow up (sign/coupling errors).
pub const KY_BAND: (f64, f64) = (0.02, 50.0);

/// The shear-band profile `s(y)`: ≈1 inside the band, ≈0 outside.
fn band(y: f64) -> f64 {
    0.5 * (((y - 0.25) / LAYER_W).tanh() - ((y - 0.75) / LAYER_W).tanh())
}

/// The seeded transverse velocity at `(x, y)`.
fn seed_u2(x: f64, y: f64) -> f64 {
    let lobe = |y0: f64| (-((y - y0) / LAYER_W).powi(2)).exp();
    SEED_AMP * (2.0 * std::f64::consts::PI * x).sin() * (lobe(0.25) + lobe(0.75))
}

/// The Kelvin–Helmholtz scenario.
pub struct KelvinHelmholtzScenario;

impl KelvinHelmholtzScenario {
    /// The transverse kinetic energy `∫ ½ ρ u₂² dV` of the *initial*
    /// condition, integrated on the scenario grid.
    pub fn seed_energy(cfg: &V2dConfig) -> f64 {
        let g = &cfg.grid;
        let mut e = 0.0;
        for g2 in 0..g.n2 {
            for g1 in 0..g.n1 {
                let (x, y) = (g.x1c(g1), g.x2c(g2));
                let rho = 1.0 + (RHO_INNER - 1.0) * band(y);
                let u2 = seed_u2(x, y);
                e += 0.5 * rho * u2 * u2 * g.volume(g1, g2);
            }
        }
        e
    }
}

impl Scenario for KelvinHelmholtzScenario {
    fn family(&self) -> Family {
        Family::KelvinHelmholtz
    }

    fn describe(&self) -> &'static str {
        "Kelvin-Helmholtz shear layer: seeded-mode growth in a banded channel"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (48, 32, 8)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        let bc = HydroBc {
            west: crate::hydro::BcKind::Outflow,
            east: crate::hydro::BcKind::Outflow,
            south: crate::hydro::BcKind::Reflecting,
            north: crate::hydro::BcKind::Reflecting,
        };
        hydro_config(n1, n2, steps, T_KH / steps as f64, [(0.0, 1.0), (0.0, 1.0)], 1.4, bc)
    }

    fn init(&self, sim: &mut V2dSim) {
        let grid = *sim.grid();
        let Some(hcfg) = sim.config().hydro else {
            sim.erad_mut().fill_interior(1e-6);
            return;
        };
        let eos = GammaLaw::new(hcfg.gamma);
        if let Some(state) = sim.hydro_mut() {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (x, y) = grid.center(i1, i2);
                    let s = band(y);
                    let w = Prim {
                        rho: 1.0 + (RHO_INNER - 1.0) * s,
                        u1: -U_SHEAR + 2.0 * U_SHEAR * s,
                        u2: seed_u2(x, y),
                        p: P0,
                    };
                    let c = eos.to_cons(w);
                    state.rho.set(i1 as isize, i2 as isize, c.rho);
                    state.m1.set(i1 as isize, i2 as isize, c.m1);
                    state.m2.set(i1 as isize, i2 as isize, c.m2);
                    state.etot.set(i1 as isize, i2 as isize, c.etot);
                }
            }
        }
        sim.erad_mut().fill_interior(1e-6);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let grid = sim.grid();
        let (mut mass, mut etot, mut kx, mut ky) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        if let Some(state) = sim.hydro() {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (g1, g2) = grid.to_global(i1, i2);
                    let vol = grid.global.volume(g1, g2);
                    let (i1, i2) = (i1 as isize, i2 as isize);
                    let rho = state.rho.get(i1, i2);
                    mass += rho * vol;
                    etot += state.etot.get(i1, i2) * vol;
                    let m1 = state.m1.get(i1, i2);
                    let m2 = state.m2.get(i1, i2);
                    kx += 0.5 * m1 * m1 / rho * vol;
                    ky += 0.5 * m2 * m2 / rho * vol;
                }
            }
        }
        let sum = |sink: &mut MultiCostSink, v: f64| comm.allreduce_scalar(sink, ReduceOp::Sum, v);
        let mass = sum(sink, mass);
        let etot = sum(sink, etot);
        let kx = sum(sink, kx);
        let ky = sum(sink, ky);
        // Reference invariants from the initial condition, replayed on
        // the global grid.
        let cfg = sim.config();
        let gamma = cfg.hydro.map_or(1.4, |h| h.gamma);
        let g = &cfg.grid;
        let (mut mass0, mut etot0, mut kx0) = (0.0f64, 0.0f64, 0.0f64);
        for g2 in 0..g.n2 {
            for g1 in 0..g.n1 {
                let (x, y) = (g.x1c(g1), g.x2c(g2));
                let s = band(y);
                let rho = 1.0 + (RHO_INNER - 1.0) * s;
                let u1 = -U_SHEAR + 2.0 * U_SHEAR * s;
                let u2 = seed_u2(x, y);
                let vol = g.volume(g1, g2);
                mass0 += rho * vol;
                etot0 += (P0 / (gamma - 1.0) + 0.5 * rho * (u1 * u1 + u2 * u2)) * vol;
                kx0 += 0.5 * rho * u1 * u1 * vol;
            }
        }
        let ky0 = Self::seed_energy(cfg).max(f64::MIN_POSITIVE);
        let response = ky / ky0;
        let mix = 1.0 - kx / kx0.max(f64::MIN_POSITIVE);
        let l1 = ((mass - mass0) / mass0).abs();
        let l2 = ((etot - etot0) / etot0).abs();
        let tolerance = 0.02;
        let pass = l1 < tolerance
            && l2 < tolerance
            && (MIX_BAND.0..MIX_BAND.1).contains(&mix)
            && (KY_BAND.0..KY_BAND.1).contains(&response);
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf: mix,
            tolerance,
            pass,
            detail: format!(
                "mass drift {l1:.2e}, energy drift {l2:.2e}; shear mixing {mix:.3}, transverse-KE response {response:.3}"
            ),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::SelfConvergence,
            refine: Refinement::Space,
            base: (24, 16, 8),
            min_order: 0.5,
        }
    }

    fn study_field(&self, sim: &V2dSim) -> Vec<f64> {
        hydro_rho(sim)
    }
}
