//! The Sedov–Taylor blast: a point-like energy deposition driving a
//! self-similar cylindrical shock through a cold uniform medium, run in
//! a closed (reflecting) box.
//!
//! In 2-D planar geometry the similarity solution predicts the shock
//! radius
//!
//! ```text
//! R(t) = ξ₀ (E t² / ρ)^(1/4)
//! ```
//!
//! with ξ₀ an O(1) constant (≈ 1.0 for γ = 1.4).  Validation grades
//! three things: exact mass conservation and near-exact total-energy
//! conservation (the closed box makes both invariants of the scheme up
//! to roundoff), and the swept-shell radius against the similarity law
//! within a generous band (the blast is only a few zones wide at smoke
//! resolution).  The convergence study self-converges the density field
//! under spatial refinement.

use v2d_comm::{Comm, ReduceOp};
use v2d_machine::MultiCostSink;

use crate::hydro::eos::Prim;
use crate::hydro::{GammaLaw, HydroBc};
use crate::sim::{V2dConfig, V2dSim};

use super::scenario::{
    hydro_config, hydro_rho, Convergence, ConvergenceMode, Family, Refinement, Scenario,
    ValidationReport,
};

/// Physical end time: the shock reaches R ≈ 0.22, well inside the unit
/// box.
pub const T_SEDOV: f64 = 0.05;

/// Blast energy (per unit length — 2-D planar).
pub const E_BLAST: f64 = 1.0;

/// Initial deposition radius (resolution-independent, so refinement
/// studies converge to one solution).
pub const R_DEPOSIT: f64 = 0.12;

/// Ambient density / pressure.
pub const RHO_AMBIENT: f64 = 1.0;
/// Ambient pressure (small but finite: the EOS needs p > 0 everywhere).
pub const P_AMBIENT: f64 = 1e-4;

/// Similarity constant ξ₀ for γ = 1.4 in 2-D planar geometry.
pub const XI_SEDOV: f64 = 1.0;

/// The Sedov–Taylor blast scenario.
pub struct SedovScenario;

impl SedovScenario {
    /// The blast-region overpressure realizing `E_BLAST` inside
    /// `R_DEPOSIT`: `p = (γ−1) E / (π r₀²)`.
    pub fn blast_pressure(gamma: f64) -> f64 {
        (gamma - 1.0) * E_BLAST / (std::f64::consts::PI * R_DEPOSIT * R_DEPOSIT)
    }

    /// The similarity shock radius at time `t`.
    pub fn shock_radius(t: f64) -> f64 {
        XI_SEDOV * (E_BLAST * t * t / RHO_AMBIENT).powf(0.25)
    }
}

impl Scenario for SedovScenario {
    fn family(&self) -> Family {
        Family::Sedov
    }

    fn describe(&self) -> &'static str {
        "Sedov-Taylor blast in a closed box: conservation + similarity radius"
    }

    fn smoke(&self) -> (usize, usize, usize) {
        (48, 48, 5)
    }

    fn config(&self, n1: usize, n2: usize, steps: usize) -> V2dConfig {
        hydro_config(
            n1,
            n2,
            steps,
            T_SEDOV / steps as f64,
            [(0.0, 1.0), (0.0, 1.0)],
            1.4,
            HydroBc::closed_box(),
        )
    }

    fn init(&self, sim: &mut V2dSim) {
        let grid = *sim.grid();
        let Some(hcfg) = sim.config().hydro else {
            sim.erad_mut().fill_interior(1e-6);
            return;
        };
        let eos = GammaLaw::new(hcfg.gamma);
        let p_in = Self::blast_pressure(hcfg.gamma);
        if let Some(state) = sim.hydro_mut() {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (x, y) = grid.center(i1, i2);
                    let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
                    let p = if r < R_DEPOSIT { p_in } else { P_AMBIENT };
                    let c = eos.to_cons(Prim { rho: RHO_AMBIENT, u1: 0.0, u2: 0.0, p });
                    state.rho.set(i1 as isize, i2 as isize, c.rho);
                    state.m1.set(i1 as isize, i2 as isize, c.m1);
                    state.m2.set(i1 as isize, i2 as isize, c.m2);
                    state.etot.set(i1 as isize, i2 as isize, c.etot);
                }
            }
        }
        sim.erad_mut().fill_interior(1e-6);
    }

    fn validate(&self, sim: &V2dSim, comm: &Comm, sink: &mut MultiCostSink) -> ValidationReport {
        let grid = sim.grid();
        let (mut mass, mut etot) = (0.0f64, 0.0f64);
        // Swept-shell radius: density-excess-weighted mean radius.  A
        // thin shell carries nearly all the excess, so this tracks the
        // shock position (slightly inside it — the band absorbs that).
        let (mut wsum, mut wr) = (0.0f64, 0.0f64);
        if let Some(state) = sim.hydro() {
            for i2 in 0..grid.n2 {
                for i1 in 0..grid.n1 {
                    let (g1, g2) = grid.to_global(i1, i2);
                    let vol = grid.global.volume(g1, g2);
                    let rho = state.rho.get(i1 as isize, i2 as isize);
                    mass += rho * vol;
                    etot += state.etot.get(i1 as isize, i2 as isize) * vol;
                    let (x, y) = grid.center(i1, i2);
                    let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
                    let w = (rho - RHO_AMBIENT).max(0.0) * vol;
                    wsum += w;
                    wr += w * r;
                }
            }
        }
        let sum = |sink: &mut MultiCostSink, v: f64| comm.allreduce_scalar(sink, ReduceOp::Sum, v);
        let mass = sum(sink, mass);
        let etot = sum(sink, etot);
        let wsum = sum(sink, wsum).max(f64::MIN_POSITIVE);
        let wr = sum(sink, wr);
        // Initial invariants are known in closed form up to the grid
        // sampling of the deposition circle — so compare against the
        // *sampled* initial values, which validate() reconstructs by
        // replaying init's arithmetic on the global grid.
        let gamma = sim.config().hydro.map_or(1.4, |h| h.gamma);
        let p_in = Self::blast_pressure(gamma);
        let g = &grid.global;
        let (mut mass0, mut etot0) = (0.0f64, 0.0f64);
        for g2 in 0..g.n2 {
            for g1 in 0..g.n1 {
                let (x, y) = (g.x1c(g1), g.x2c(g2));
                let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
                let p = if r < R_DEPOSIT { p_in } else { P_AMBIENT };
                let vol = g.volume(g1, g2);
                mass0 += RHO_AMBIENT * vol;
                etot0 += p / (gamma - 1.0) * vol;
            }
        }
        let l1 = ((mass - mass0) / mass0).abs();
        let l2 = ((etot - etot0) / etot0).abs();
        let r_shell = wr / wsum;
        let r_sedov = Self::shock_radius(sim.time());
        let linf = ((r_shell - r_sedov) / r_sedov).abs();
        let tolerance = 1e-10;
        ValidationReport {
            family: self.family().name(),
            l1,
            l2,
            linf,
            tolerance,
            pass: l1 < tolerance && l2 < tolerance && linf < 0.35,
            detail: format!(
                "mass drift {l1:.2e}, energy drift {l2:.2e}; shell r={r_shell:.3} vs Sedov {r_sedov:.3}"
            ),
        }
    }

    fn convergence(&self) -> Convergence {
        Convergence {
            mode: ConvergenceMode::SelfConvergence,
            refine: Refinement::Space,
            base: (24, 24, 5),
            min_order: 0.5,
        }
    }

    fn study_field(&self, sim: &V2dSim) -> Vec<f64> {
        hydro_rho(sim)
    }
}
