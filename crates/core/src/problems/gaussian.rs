//! The paper's radiation test problem: diffusion of a 2-D Gaussian pulse.
//!
//! §II-A: "The test diffusive radiation transport problem … involves the
//! diffusion of a 2-D Gaussian pulse of radiation and does not involve
//! hydrodynamic evolution. … The linear system … consists of
//! x1 × x2 × 2 coupled linear equations, where the spatial dimensions
//! are x1 = 200 and x2 = 100 zones respectively, and the number of
//! radiation species is 2."  The Table I workload evolves it for 100
//! timesteps — 300 BiCGSTAB solves.
//!
//! [`GaussianPulse::linear_config`] additionally provides the
//! verification setting (no limiter, pure scattering) where the pulse
//! has the closed-form solution
//!
//! ```text
//! E(r, t) = E_bg + A·σ²/(σ² + 4Dt) · exp(−r²/(σ² + 4Dt)),  D = c/(3κ_t)
//! ```

use v2d_linalg::SolveOpts;

use crate::grid::{Geometry, Grid2};
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::sim::{PrecondKind, V2dConfig, V2dSim};

/// The Gaussian pulse initial condition.
#[derive(Debug, Clone, Copy)]
pub struct GaussianPulse {
    /// Peak amplitude above background.
    pub amplitude: f64,
    /// Gaussian width σ (same units as the grid).
    pub sigma: f64,
    /// Pulse center.
    pub center: (f64, f64),
    /// Background energy density (keeps the limiter argument finite in
    /// the far field).
    pub background: f64,
}

impl GaussianPulse {
    /// The standard pulse: centered, σ = 10 zones of the paper grid.
    pub fn standard() -> Self {
        GaussianPulse { amplitude: 1.0, sigma: 0.1, center: (1.0, 0.5), background: 1e-4 }
    }

    /// The paper's Table I configuration: 200 × 100 zones, 2 species,
    /// 100 steps, SPAI-preconditioned ganged BiCGSTAB.
    pub fn paper_config() -> V2dConfig {
        Self::scaled_config(200, 100, 100)
    }

    /// The same problem scaled to an arbitrary grid and step count (for
    /// tests and quick examples).  The timestep is scaled with the zone
    /// width so the implicit systems stay comparably stiff: ~400× the
    /// explicit diffusion limit, the regime where the radiation update
    /// earns its implicit solver (and its Krylov iteration counts).
    pub fn scaled_config(n1: usize, n2: usize, n_steps: usize) -> V2dConfig {
        let grid = Grid2::new(n1, n2, (0.0, 2.0), (0.0, 1.0), Geometry::Cartesian);
        let opacity = OpacityModel::test_problem();
        let (c_light, kappa_t) = (1.0, 2.0);
        let d_est = c_light / (3.0 * kappa_t);
        let dx = grid.dx1().min(grid.dx2());
        let dt_explicit = dx * dx / (4.0 * d_est);
        V2dConfig {
            grid,
            limiter: Limiter::LevermorePomraning,
            opacity,
            c_light,
            dt: 400.0 * dt_explicit,
            n_steps,
            // The sparse-approximate-inverse preconditioner on the
            // species-block-diagonal pattern (SPAI(0) in ref [7]'s
            // terms): its application is an order of magnitude cheaper
            // than the operator, matching the paper's 141 s matvec vs
            // 14 s preconditioning breakdown.  The full stencil-pattern
            // SPAI(1) is exercised by the preconditioner ablation.
            precond: PrecondKind::BlockJacobi,
            solve: SolveOpts::default(),
            hydro: None,
            coupling: None,
        }
    }

    /// A *linear* configuration (no limiter, pure scattering, no species
    /// exchange) on the same grid, where [`GaussianPulse::analytic`]
    /// holds exactly.
    pub fn linear_config(n1: usize, n2: usize, n_steps: usize) -> V2dConfig {
        let mut cfg = Self::scaled_config(n1, n2, n_steps);
        cfg.limiter = Limiter::None;
        cfg.opacity =
            OpacityModel::Constant { kappa_a: [0.0, 0.0], kappa_s: [2.0, 2.0], kappa_x: 0.0 };
        cfg
    }

    /// Set the initial radiation field (both species identical, as the
    /// paper's pulse).
    pub fn init(&self, sim: &mut V2dSim) {
        let grid = *sim.grid();
        let (cx, cy) = self.center;
        let (a, s2) = (self.amplitude, self.sigma * self.sigma);
        let bg = self.background;
        sim.erad_mut().fill_with(|_, i1, i2| {
            let (x, y) = grid.center(i1, i2);
            let r2 = (x - cx).powi(2) + (y - cy).powi(2);
            bg + a * (-r2 / s2).exp()
        });
    }

    /// The closed-form linear-diffusion solution at time `t` with
    /// diffusion coefficient `d` (valid for [`Self::linear_config`]).
    pub fn analytic(&self, d: f64, x: f64, y: f64, t: f64) -> f64 {
        let s2 = self.sigma * self.sigma;
        let s2t = s2 + 4.0 * d * t;
        let r2 = (x - self.center.0).powi(2) + (y - self.center.1).powi(2);
        self.background + self.amplitude * s2 / s2t * (-r2 / s2t).exp()
    }

    /// The diffusion coefficient of the linear configuration.  Falls
    /// back to the species-0 floor opacities for non-constant models
    /// (where no single coefficient exists, the floor is the closest
    /// analogue; the analytic comparison is only meaningful for
    /// [`Self::linear_config`], which is constant).
    pub fn linear_diffusion_coefficient(cfg: &V2dConfig) -> f64 {
        let (ka0, ks0) = match cfg.opacity {
            OpacityModel::Constant { kappa_a, kappa_s, .. } => (kappa_a[0], kappa_s[0]),
            OpacityModel::PowerLaw { kappa0, kappa1, .. } => (kappa0[0], kappa1[0]),
        };
        cfg.c_light / (3.0 * (ka0 + ks0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    #[test]
    fn paper_config_matches_study_parameters() {
        let cfg = GaussianPulse::paper_config();
        assert_eq!((cfg.grid.n1, cfg.grid.n2), (200, 100));
        assert_eq!(cfg.n_steps, 100);
        assert_eq!(cfg.precond, PrecondKind::BlockJacobi);
        assert!(cfg.hydro.is_none(), "the paper's test does not evolve hydro");
        // 100 steps × 3 solves = the paper's 300 linear systems.
    }

    #[test]
    fn pulse_diffuses_toward_analytic_solution() {
        // Small linear problem vs the closed form: the implicit solver
        // introduces O(dt) error; with ~30 steps the field should match
        // to a couple of percent in relative L2.
        let (n1, n2) = (40, 20);
        let mut cfg = GaussianPulse::linear_config(n1, n2, 24);
        // Verification needs the pulse to stay far from the Dirichlet
        // boundary and the O(dt) backward-Euler error small, so the test
        // overrides the stiff study timestep with a gentle one.
        cfg.dt = 0.00125;
        let pulse = GaussianPulse { sigma: 0.1, ..GaussianPulse::standard() };
        let errs = Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let map = TileMap::new(n1, n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            pulse.init(&mut sim);
            sim.run(&ctx.comm, &mut ctx.sink);
            let d = GaussianPulse::linear_diffusion_coefficient(&cfg);
            let t = sim.time();
            let grid = *sim.grid();
            let mut num = 0.0;
            let mut den = 0.0;
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    let (x, y) = grid.center(i1, i2);
                    let want = pulse.analytic(d, x, y, t);
                    let got = sim.erad().get(0, i1 as isize, i2 as isize);
                    num += (got - want).powi(2);
                    den += want.powi(2);
                }
            }
            (num / den).sqrt()
        });
        assert!(errs[0] < 0.05, "relative L2 error vs analytic solution too large: {}", errs[0]);
    }

    #[test]
    fn both_species_initialized_identically() {
        let cfg = GaussianPulse::linear_config(16, 8, 1);
        Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let map = TileMap::new(16, 8, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            for i2 in 0..8isize {
                for i1 in 0..16isize {
                    assert_eq!(sim.erad().get(0, i1, i2), sim.erad().get(1, i1, i2));
                }
            }
        });
    }

    #[test]
    fn analytic_solution_conserves_energy() {
        // ∫E dA is time-independent for the closed form (σ²/s2t scaling
        // balances the spreading).
        let p = GaussianPulse::standard();
        let integrate = |t: f64| {
            let n = 400;
            let mut sum = 0.0;
            for j in 0..n {
                for i in 0..n {
                    let x = 2.0 * (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    sum += p.analytic(0.1, x, y, t) - p.background;
                }
            }
            sum * (2.0 / n as f64) * (1.0 / n as f64)
        };
        let e0 = integrate(0.0);
        let e1 = integrate(0.02);
        assert!(((e1 - e0) / e0).abs() < 1e-3, "{e0} vs {e1}");
    }
}
