//! The Sod shock tube: the hydro module's standard verification problem.

use v2d_linalg::SolveOpts;

use crate::grid::{Geometry, Grid2};
use crate::hydro::eos::Prim;
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::sim::{HydroConfig, PrecondKind, V2dConfig, V2dSim};

/// Sod tube initial condition along x1.
#[derive(Debug, Clone, Copy)]
pub struct SodTube {
    /// Diaphragm position as a fraction of the x1 extent.
    pub interface: f64,
    /// Left / right primitive states.
    pub left: Prim,
    pub right: Prim,
}

impl SodTube {
    /// The classic configuration.
    pub fn standard() -> Self {
        SodTube {
            interface: 0.5,
            left: Prim { rho: 1.0, u1: 0.0, u2: 0.0, p: 1.0 },
            right: Prim { rho: 0.125, u1: 0.0, u2: 0.0, p: 0.1 },
        }
    }

    /// A V2D configuration with hydro enabled and a passive radiation
    /// field (the radiation update still runs — it is part of the code
    /// path — but with negligible energy).
    pub fn config(n1: usize, n2: usize, n_steps: usize, dt: f64) -> V2dConfig {
        V2dConfig {
            grid: Grid2::new(n1, n2, (0.0, 1.0), (0.0, n2 as f64 / n1 as f64), Geometry::Cartesian),
            limiter: Limiter::LevermorePomraning,
            opacity: OpacityModel::test_problem(),
            c_light: 1.0,
            dt,
            n_steps,
            precond: PrecondKind::BlockJacobi,
            solve: SolveOpts::default(),
            hydro: Some(HydroConfig { gamma: 1.4, cfl: 0.4, bc: crate::hydro::HydroBc::outflow() }),
            coupling: None,
        }
    }

    /// Set the hydro initial condition (requires hydro enabled).
    pub fn init(&self, sim: &mut V2dSim) {
        let grid = *sim.grid();
        // The problem's own config() always enables hydro; a caller who
        // disabled it gets only the radiation background below.
        let Some(hcfg) = sim.config().hydro else {
            sim.erad_mut().fill_interior(1e-6);
            return;
        };
        let eos = crate::hydro::GammaLaw::new(hcfg.gamma);
        let (iface, left, right) = (self.interface, self.left, self.right);
        let x1span = grid.global.x1max - grid.global.x1min;
        let Some(state) = sim.hydro_mut() else {
            return;
        };
        for i2 in 0..grid.n2 {
            for i1 in 0..grid.n1 {
                let (g1, _) = grid.to_global(i1, i2);
                let x = grid.global.x1c(g1) / x1span;
                let w = if x < iface { left } else { right };
                let c = eos.to_cons(w);
                state.rho.set(i1 as isize, i2 as isize, c.rho);
                state.m1.set(i1 as isize, i2 as isize, c.m1);
                state.m2.set(i1 as isize, i2 as isize, c.m2);
                state.etot.set(i1 as isize, i2 as isize, c.etot);
            }
        }
        // Faint radiation background so the limiter argument is finite.
        sim.erad_mut().fill_interior(1e-6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    #[test]
    fn coupled_sod_run_develops_a_shock() {
        let (n1, n2) = (64, 4);
        let cfg = SodTube::config(n1, n2, 10, 2e-3);
        Spmd::new(2).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let map = TileMap::new(n1, n2, 2, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            SodTube::standard().init(&mut sim);
            let agg = sim.run(&ctx.comm, &mut ctx.sink);
            assert_eq!(agg.steps, 10);
            // Gas is moving somewhere on this rank's tile or the
            // other's; check the local max velocity via the fields.
            let grid = *sim.grid();
            let st = sim.hydro().unwrap();
            let mut max_u = 0.0f64;
            for i2 in 0..grid.n2 as isize {
                for i1 in 0..grid.n1 as isize {
                    max_u = max_u.max((st.m1.get(i1, i2) / st.rho.get(i1, i2)).abs());
                }
            }
            let global_max =
                ctx.comm.allreduce_scalar(&mut ctx.sink, v2d_comm::ReduceOp::Max, max_u);
            assert!(global_max > 0.2, "no flow developed: {global_max}");
        });
    }
}
