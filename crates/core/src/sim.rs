//! The V2D simulation driver.
//!
//! [`V2dSim`] owns the per-rank state (radiation field, optional hydro
//! state, grid view) and advances it: an explicit hydro step (when
//! enabled) followed by the implicit radiation update with its three
//! BiCGSTAB solves.  A TAU-style [`Profiler`] wraps the phases so the
//! paper's §II-E breakdown (three BiCGSTAB call sites at roughly equal
//! thirds) can be reproduced with `profiler_report`.

use v2d_comm::{coll_site, CartComm, Comm, CommError, ReduceOp, TileMap};
use v2d_linalg::{SolveOpts, TileVec};
use v2d_machine::{
    AttrVal, ExecCtx, FaultInjector, FaultKind, FaultRecord, FieldFault, MultiCostSink, TraceSink,
};
use v2d_obs::{RunReport, Tracer};
use v2d_perf::Profiler;

use crate::field::Field2;
use crate::grid::{Grid2, LocalGrid};
use crate::hydro::{GammaLaw, HydroState, HydroStepper};
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::rad::coeffs::MatterState;
use crate::rad::coupling::MatterCoupling;
use crate::rad::stepper::{RadStepError, RadStepStats, RadStepper, RadWorkspace};

/// Which preconditioner the radiation solves use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondKind {
    /// None (baseline).
    None,
    /// Point-Jacobi.
    Jacobi,
    /// 2×2 species-block inverse (SPAI on the block-diagonal pattern).
    BlockJacobi,
    /// Full stencil-pattern sparse approximate inverse.
    Spai,
}

/// Optional hydrodynamics configuration.
#[derive(Debug, Clone, Copy)]
pub struct HydroConfig {
    pub gamma: f64,
    pub cfl: f64,
    /// Physical boundary conditions (defaulted to outflow by the
    /// problem setups that don't care).
    pub bc: crate::hydro::HydroBc,
}

/// Full simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct V2dConfig {
    /// The global grid.
    pub grid: Grid2,
    /// Radiation microphysics.
    pub limiter: Limiter,
    pub opacity: OpacityModel,
    pub c_light: f64,
    /// Fixed timestep and step count.
    pub dt: f64,
    pub n_steps: usize,
    /// Solver configuration.
    pub precond: PrecondKind,
    pub solve: SolveOpts,
    /// Hydrodynamics (None = frozen, as in the paper's radiation test).
    pub hydro: Option<HydroConfig>,
    /// Matter–radiation energy exchange (None = matter is a passive
    /// background, as in the paper's test problem).  Currently exclusive
    /// with `hydro` (coupled gas-energy feedback into the flow is listed
    /// as future work, mirroring the paper's own scoping).
    pub coupling: Option<MatterCoupling>,
}

/// Bounds on the driver's recovery ladder when a radiation solve fails
/// through the entire cascade.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Maximum timestep halvings within one step before giving up.
    pub max_dt_halvings: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_dt_halvings: 3 }
    }
}

/// A step whose recovery ladder (non-finite scrub, bounded timestep
/// halving) was exhausted.
#[derive(Debug)]
pub enum StepError {
    /// The radiation update failed even at the smallest allowed dt.
    Radiation {
        istep: usize,
        /// The sub-timestep of the final, failed attempt.
        dt: f64,
        error: RadStepError,
    },
    /// The communicator itself failed (lockstep mismatch, collective or
    /// receive timeout, peer death).  The recovery ladder cannot retry:
    /// its own scrub/halve decision is a collective, and the
    /// communicator's collectives are sticky-poisoned — the run is over
    /// on every rank, each holding a typed verdict instead of a hang.
    Comm { istep: usize, error: CommError },
    /// This rank was killed by its fault plan (`RankKill`, or
    /// `RankStallForever` when `stalled`) at the top of step `istep`.
    /// Its comm endpoint is already retired — peers resolve into
    /// [`CommError::RankDead`] — and the body must return without
    /// touching the communicator again.  Only the supervisor
    /// (`v2d_core::supervise`) can recover from this, by relaunching.
    Lost { istep: usize, stalled: bool },
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Radiation { istep, dt, error } => {
                write!(f, "step {istep}: radiation update failed at dt = {dt:.3e}: {error}")
            }
            StepError::Comm { istep, error } => {
                write!(f, "step {istep}: communicator failed: {error}")
            }
            StepError::Lost { istep, stalled: false } => {
                write!(f, "step {istep}: rank killed by fault plan")
            }
            StepError::Lost { istep, stalled: true } => {
                write!(f, "step {istep}: rank stalled forever by fault plan")
            }
        }
    }
}

impl std::error::Error for StepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StepError::Radiation { error, .. } => Some(error),
            StepError::Comm { error, .. } => Some(error),
            StepError::Lost { .. } => None,
        }
    }
}

/// One step's outcome.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// The three radiation solves (of the last radiation sub-step, when
    /// recovery subcycled).
    pub rad: RadStepStats,
    /// Hydro CFL timestep actually taken (if hydro is enabled).
    pub hydro_dt: Option<f64>,
    /// Radiation sub-steps taken (1 on the fault-free fast path).
    pub rad_substeps: usize,
    /// Recovery actions performed this step (scrubs + dt halvings).
    pub recoveries: u32,
}

/// Whole-run aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    pub steps: usize,
    pub total_solves: usize,
    pub total_iters: usize,
    pub total_reductions: usize,
    /// Recovery actions (solver fallbacks, scrubs, dt halvings) across
    /// the run; 0 on a fault-free run.
    pub total_recoveries: u32,
}

/// Per-rank simulation state.
pub struct V2dSim {
    cfg: V2dConfig,
    cart: CartComm,
    grid: LocalGrid,
    erad: TileVec,
    source: TileVec,
    hydro: Option<(HydroStepper, HydroState)>,
    /// Gas temperature field when matter coupling is active.
    temp: Option<Field2>,
    time: f64,
    istep: usize,
    /// Reusable solver + stepper scratch (one per rank; reused across
    /// all solves of the run).
    wks: RadWorkspace,
    /// Deterministic fault injector (None on production runs — the
    /// zero-overhead fast path).
    faults: Option<FaultInjector>,
    /// Bounds on the step-level recovery ladder.
    recovery: RecoveryPolicy,
    /// Virtual-clock tracer (None on production runs; when attached,
    /// every kernel charge, phase span, solver event, and recovery
    /// action is recorded against the modeled clocks).
    tracer: Option<Tracer>,
    /// TAU-style profiler over compiler lane 0.
    pub profiler: Profiler,
}

impl V2dSim {
    /// Create the rank-local simulation for `comm`'s rank under the
    /// given process topology.
    pub fn new(cfg: V2dConfig, comm: &Comm, map: TileMap) -> Self {
        assert_eq!(map.n1, cfg.grid.n1, "tile map does not match grid");
        assert_eq!(map.n2, cfg.grid.n2, "tile map does not match grid");
        let cart = CartComm::new(comm, map);
        let tile = cart.tile();
        let grid = LocalGrid::new(cfg.grid, tile);
        assert!(
            !(cfg.hydro.is_some() && cfg.coupling.is_some()),
            "matter coupling with live hydrodynamics is not supported yet"
        );
        let hydro = cfg.hydro.map(|h| {
            let eos = GammaLaw::new(h.gamma);
            let state = HydroState::from_prim(tile.n1, tile.n2, &eos, |_, _| {
                crate::hydro::eos::Prim { rho: 1.0, u1: 0.0, u2: 0.0, p: 1.0 }
            });
            (HydroStepper::new(eos, h.cfl).with_bc(h.bc), state)
        });
        let temp = cfg.coupling.map(|_| {
            let mut t = Field2::new(tile.n1, tile.n2);
            t.fill_with(|_, _| 1.0);
            t
        });
        V2dSim {
            cfg,
            cart,
            grid,
            erad: TileVec::new(tile.n1, tile.n2),
            source: TileVec::new(tile.n1, tile.n2),
            hydro,
            temp,
            time: 0.0,
            istep: 0,
            wks: RadWorkspace::new(tile.n1, tile.n2),
            faults: None,
            recovery: RecoveryPolicy::default(),
            tracer: None,
            profiler: Profiler::new(),
        }
    }

    /// Attach a virtual-clock tracer.  An attached tracer never perturbs
    /// the modeled clocks or the profiler report — it only observes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detach and return the tracer (e.g. to export a Chrome trace).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attach a deterministic fault injector; its plan replays at exact
    /// `(step, rank)` coordinates.  An injector over an empty plan is
    /// bit-invisible: outputs match a run with no injector at all.
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        self.faults = Some(inj);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Mutable access to the attached injector, for drivers that poll
    /// fault classes the step loop itself does not consume (e.g.
    /// [`FaultKind::CorruptCheckpoint`] after persisting a checkpoint).
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_mut()
    }

    /// Drain the injector's fired-fault/recovery log (empty without an
    /// injector).
    pub fn take_fault_log(&mut self) -> Vec<FaultRecord> {
        self.faults.as_mut().map(|inj| std::mem::take(&mut inj.log)).unwrap_or_default()
    }

    /// Replace the step-level recovery bounds.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The configuration.
    pub fn config(&self) -> &V2dConfig {
        &self.cfg
    }

    /// This rank's grid view.
    pub fn grid(&self) -> &LocalGrid {
        &self.grid
    }

    /// This rank's topology view.
    pub fn cart(&self) -> &CartComm {
        &self.cart
    }

    /// Radiation energy density field.
    pub fn erad(&self) -> &TileVec {
        &self.erad
    }

    /// Mutable radiation field (problem setup).
    pub fn erad_mut(&mut self) -> &mut TileVec {
        &mut self.erad
    }

    /// Mutable emission source (problem setup).
    pub fn source_mut(&mut self) -> &mut TileVec {
        &mut self.source
    }

    /// Mutable hydro state, if hydro is enabled.
    pub fn hydro_mut(&mut self) -> Option<&mut HydroState> {
        self.hydro.as_mut().map(|(_, s)| s)
    }

    /// Hydro state, if enabled.
    pub fn hydro(&self) -> Option<&HydroState> {
        self.hydro.as_ref().map(|(_, s)| s)
    }

    /// Gas temperature field, if matter coupling is enabled.
    pub fn temperature(&self) -> Option<&Field2> {
        self.temp.as_ref()
    }

    /// Mutable gas temperature field (problem setup).
    pub fn temperature_mut(&mut self) -> Option<&mut Field2> {
        self.temp.as_mut()
    }

    /// Simulated physical time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn istep(&self) -> usize {
        self.istep
    }

    /// Set time/step (checkpoint restore).
    pub(crate) fn set_time(&mut self, time: f64, istep: usize) {
        self.time = time;
        self.istep = istep;
    }

    /// Advance one timestep.  The public surface stays `(comm, sink)`;
    /// internally one [`ExecCtx`] carrying the simulation's profiler is
    /// threaded through the whole chain.
    ///
    /// Panics if the recovery ladder is exhausted; use
    /// [`V2dSim::try_step`] for a typed error instead.
    pub fn step(&mut self, comm: &Comm, sink: &mut MultiCostSink) -> StepStats {
        match self.try_step(comm, sink) {
            Ok(st) => st,
            Err(e) => panic!("unrecoverable simulation step: {e}"),
        }
    }

    /// [`V2dSim::step`] with graceful degradation: when the radiation
    /// update fails through the whole solver cascade, the driver first
    /// scrubs non-finite cells out of the radiation field (undoing
    /// upstream data poisoning) and retries, then subcycles with a
    /// halved sub-timestep, bounded by the [`RecoveryPolicy`].  Both
    /// recovery decisions are taken collectively so every rank walks
    /// the same ladder.  Only when the ladder is exhausted does the
    /// step surface a [`StepError`]; time and step count then remain
    /// unadvanced.
    pub fn try_step(
        &mut self,
        comm: &Comm,
        sink: &mut MultiCostSink,
    ) -> Result<StepStats, StepError> {
        if let Some(kind) = self.arm_step_faults(sink) {
            // Whole-rank death: retire the endpoint first so peer waits
            // resolve into typed `RankDead` instead of hanging, then
            // unwind without advancing time.
            comm.retire();
            let stalled = matches!(kind, v2d_machine::FaultKind::RankStallForever);
            return Err(StepError::Lost { istep: self.istep, stalled });
        }
        let istep = self.istep;
        let mut cx = ExecCtx::with_parts(
            sink,
            Some(&mut self.profiler),
            self.faults.as_mut(),
            self.tracer.as_mut().map(|t| t as &mut dyn TraceSink),
        );
        cx.trace_enter("step", &[("istep", AttrVal::U64(istep as u64))]);
        // The rank step function, decomposed: the borrow split below
        // hands the phase struct the simulation state disjoint from the
        // observability borrows riding in `cx`, and each phase runs from
        // one communication yield point to the next (the same seams the
        // event-driven universe schedules on).
        let mut phases = StepPhases {
            cfg: &self.cfg,
            cart: &self.cart,
            grid: &self.grid,
            erad: &mut self.erad,
            source: &mut self.source,
            hydro: self.hydro.as_mut(),
            temp: self.temp.as_mut(),
            wks: &mut self.wks,
            recovery: self.recovery,
            istep,
        };
        let dt = phases.cfg.dt;
        let hydro_dt = match phases.hydro_phase(comm, &mut cx, dt) {
            Ok(h) => h,
            Err(error) => {
                cx.trace_exit("step");
                return Err(StepError::Comm { istep, error });
            }
        };
        phases.matter_emission_phase(&mut cx);
        let (rad, rad_substeps, recoveries) = match phases.radiation_phase(comm, &mut cx, dt) {
            Ok(out) => out,
            Err(e) => {
                cx.trace_exit("step");
                return Err(e);
            }
        };
        phases.matter_update_phase(&mut cx, dt);
        cx.trace_exit("step");

        self.time += dt;
        self.istep += 1;
        Ok(StepStats { rad, hydro_dt, rad_substeps, recoveries })
    }

    /// Arm this step's scheduled faults and apply the ones aimed at the
    /// driver itself: a rank stall charges virtual time, a field fault
    /// poisons one cell of the radiation field.  A whole-rank death
    /// (`RankKill` / `RankStallForever`) is returned to [`Self::try_step`]
    /// instead — a dead rank injects nothing else and must not step.
    fn arm_step_faults(&mut self, sink: &mut MultiCostSink) -> Option<v2d_machine::FaultKind> {
        if let Some(inj) = &mut self.faults {
            inj.begin_step(self.istep as u64);
            if let Some(kind) = inj.poll_kill() {
                let stalled = matches!(kind, v2d_machine::FaultKind::RankStallForever);
                if let Some(t) = &mut self.tracer {
                    t.instant(sink, "fault_kill", &[("stalled", AttrVal::Bool(stalled))]);
                }
                return Some(kind);
            }
            if let Some(secs) = inj.poll_stall() {
                for lane in &mut sink.lanes {
                    lane.charge_mpi_secs(secs);
                }
                if let Some(t) = &mut self.tracer {
                    t.instant(sink, "fault_stall", &[("secs", AttrVal::F64(secs))]);
                }
            }
            if let Some(fault) = inj.poll_field() {
                let (s, i1, i2) = apply_field_fault(&mut self.erad, fault);
                inj.note(format!("field fault lands at species {s}, cell ({i1},{i2})"));
                if let Some(t) = &mut self.tracer {
                    t.instant(
                        sink,
                        "fault_field",
                        &[
                            ("species", AttrVal::U64(s as u64)),
                            ("i1", AttrVal::U64(i1 as u64)),
                            ("i2", AttrVal::U64(i2 as u64)),
                        ],
                    );
                }
            }
        }
        None
    }

    /// Run `n_steps` (from the config), returning aggregates.
    pub fn run(&mut self, comm: &Comm, sink: &mut MultiCostSink) -> RunStats {
        let mut agg = RunStats::default();
        for _ in 0..self.cfg.n_steps {
            let st = self.step(comm, sink);
            agg.steps += 1;
            agg.total_solves += 3;
            agg.total_iters += st.rad.total_iters();
            agg.total_reductions += st.rad.stages.iter().map(|s| s.reductions).sum::<usize>();
            agg.total_recoveries +=
                st.recoveries + st.rad.stages.iter().map(|s| s.recoveries).sum::<u32>();
        }
        agg
    }

    /// [`V2dSim::run`] with per-step observability: every step's solver
    /// work and per-lane modeled clock advance is snapshotted into a
    /// [`RunReport`], and run-wide totals (iterations, reductions,
    /// recoveries, bytes by memory level, message counts, modeled MPI
    /// time) land in the report's metrics registry.  The modeled clocks
    /// are untouched — the report only reads them, so its values match
    /// an unobserved run bit-for-bit.
    pub fn run_observed(
        &mut self,
        comm: &Comm,
        sink: &mut MultiCostSink,
        meta: Vec<(String, String)>,
    ) -> (RunStats, RunReport) {
        let mut report = RunReport::new(meta);
        let mut agg = RunStats::default();
        let mut prev: Vec<f64> = sink.lanes.iter().map(|l| l.elapsed_secs()).collect();
        for _ in 0..self.cfg.n_steps {
            let st = self.step(comm, sink);
            agg.steps += 1;
            agg.total_solves += 3;
            agg.total_iters += st.rad.total_iters();
            agg.total_reductions += st.rad.stages.iter().map(|s| s.reductions).sum::<usize>();
            agg.total_recoveries +=
                st.recoveries + st.rad.stages.iter().map(|s| s.recoveries).sum::<u32>();

            let mut vals = std::collections::BTreeMap::new();
            for (i, lane) in sink.lanes.iter().enumerate() {
                let now = lane.elapsed_secs();
                vals.insert(format!("clock.{}_s", lane.profile.id.slug()), now - prev[i]);
                prev[i] = now;
            }
            vals.insert("rad.iters".to_string(), st.rad.total_iters() as f64);
            vals.insert(
                "rad.reductions".to_string(),
                st.rad.stages.iter().map(|s| s.reductions).sum::<usize>() as f64,
            );
            vals.insert("rad.substeps".to_string(), st.rad_substeps as f64);
            vals.insert(
                "recoveries".to_string(),
                (st.recoveries + st.rad.stages.iter().map(|s| s.recoveries).sum::<u32>()) as f64,
            );
            report.record_step((self.istep - 1) as u64, vals);
        }

        let t = &mut report.totals;
        t.counter_add("solver.solves", agg.total_solves as u64);
        t.counter_add("solver.iters", agg.total_iters as u64);
        t.counter_add("solver.reductions", agg.total_reductions as u64);
        t.counter_add("recoveries", agg.total_recoveries as u64);
        for lane in &sink.lanes {
            let slug = lane.profile.id.slug();
            t.gauge_set(&format!("clock.{slug}_s"), lane.elapsed_secs());
            t.gauge_set(&format!("mpi.{slug}_s"), lane.mpi_secs());
        }
        // Traffic and message counters are identical in structure across
        // lanes; lane 0 (the profiler lane) is the canonical one.
        let lane0 = &sink.lanes[0];
        for level in v2d_machine::MemLevel::all() {
            t.counter_add(
                &format!("mem.bytes.{}", level.name()),
                lane0.bytes_by_level[level.index()],
            );
        }
        t.counter_add("comm.msgs", lane0.comm_msgs);
        t.counter_add("comm.bytes", lane0.comm_bytes);
        // Solver-event counters come from the tracer (when attached):
        // restarts and fallbacks keyed by breakdown reason, recovery
        // rungs keyed by action.
        if let Some(tr) = &self.tracer {
            for ev in tr.events().iter().filter(|e| e.lane == 0) {
                match ev.name.as_str() {
                    "solver_restart" => {
                        let reason = ev.attr_str("reason").unwrap_or("unknown");
                        t.counter_add(&format!("solver.restarts.{reason}"), 1);
                    }
                    "solver_fallback" => {
                        let reason = ev.attr_str("reason").unwrap_or("unknown");
                        t.counter_add(&format!("solver.fallbacks.{reason}"), 1);
                    }
                    "recovery" => {
                        let action = ev.attr_str("action").unwrap_or("unknown");
                        t.counter_add(&format!("recovery.{action}"), 1);
                    }
                    _ => {}
                }
            }
        }
        (agg, report)
    }

    /// Global volume-integrated radiation energy (collective).
    pub fn total_radiation_energy(&self, comm: &Comm, sink: &mut MultiCostSink) -> f64 {
        let mut local = 0.0;
        for s in 0..v2d_linalg::NSPEC {
            for i2 in 0..self.grid.n2 {
                for i1 in 0..self.grid.n1 {
                    let (g1, g2) = self.grid.to_global(i1, i2);
                    local += self.erad.get(s, i1 as isize, i2 as isize)
                        * self.grid.global.volume(g1, g2);
                }
            }
        }
        // Site-tagged for the lockstep verifier; a failure here means
        // the communicator is already poisoned (a healthy run cannot
        // time out), so this diagnostic surface escalates like the
        // legacy infallible collectives do.
        comm.try_allreduce_scalar(sink, coll_site::TOTAL_ENERGY, ReduceOp::Sum, local)
            .unwrap_or_else(|e| panic!("total_radiation_energy: {e}"))
    }

    /// ParaProf-style routine report for lane 0.
    pub fn profiler_report(&self, sink: &MultiCostSink) -> String {
        self.profiler.report(&sink.lanes[0])
    }
}

/// One step of the rank step function, split into its named phases.
///
/// Each phase runs the driver from one blocking communication site to
/// the next — the halo exchanges and CFL/convergence reductions inside
/// it are exactly the yield points where the event-driven universe
/// suspends the rank.  The struct borrows the simulation state
/// disjointly from the observability state (`Profiler`, `FaultInjector`,
/// `Tracer`) that [`ExecCtx`] carries, so phases can charge clocks and
/// emit trace spans while mutating fields.
struct StepPhases<'a> {
    cfg: &'a V2dConfig,
    cart: &'a CartComm,
    grid: &'a LocalGrid,
    erad: &'a mut TileVec,
    source: &'a mut TileVec,
    hydro: Option<&'a mut (HydroStepper, HydroState)>,
    temp: Option<&'a mut Field2>,
    wks: &'a mut RadWorkspace,
    recovery: RecoveryPolicy,
    istep: usize,
}

impl StepPhases<'_> {
    /// Subcycle the explicit hydro to its CFL limit within `dt`.
    /// Returns the advanced hydro time when hydro is enabled.  The CFL
    /// collective is the first communication of a step, so on hydro
    /// scenarios a peer death or poisoned communicator surfaces here as
    /// the typed [`CommError`] the driver turns into a run verdict.
    fn hydro_phase(
        &mut self,
        comm: &Comm,
        cx: &mut ExecCtx<'_>,
        dt: f64,
    ) -> Result<Option<f64>, CommError> {
        let (stepper, state) = match &mut self.hydro {
            Some(h) => &mut **h,
            None => return Ok(None),
        };
        cx.enter("hydro");
        let mut advanced = 0.0;
        while advanced < dt {
            let hdt = match stepper.max_dt(comm, cx, self.grid, state) {
                Ok(v) => v.min(dt - advanced),
                Err(e) => {
                    cx.exit("hydro");
                    return Err(e);
                }
            };
            stepper.step(comm, cx, self.cart, self.grid, state, hdt);
            advanced += hdt;
        }
        cx.exit("hydro");
        Ok(Some(advanced))
    }

    /// Matter emission enters the radiation solve as its source term,
    /// evaluated at the beginning-of-step temperature (operator split).
    fn matter_emission_phase(&mut self, cx: &mut ExecCtx<'_>) {
        if let (Some(cp), Some(temp)) = (&self.cfg.coupling, self.temp.as_deref()) {
            cx.enter("matter_emission");
            let opacity = self.cfg.opacity;
            let at = move |i1: usize, i2: usize| {
                let _ = (i1, i2);
                opacity.eval(1.0, 1.0)
            };
            cp.emission_source(cx, self.cfg.c_light, &at, temp, self.source);
            cx.exit("matter_emission");
        }
    }

    /// The implicit radiation update behind its recovery ladder.  The
    /// fast path is one sub-step covering all of `dt`; a failed attempt
    /// leaves `erad` untouched (the stepper only commits converged
    /// stages), so the driver can scrub poisoned data or halve the
    /// sub-timestep and try again.  A solve failure is collective
    /// (convergence comes from ganged reductions, injected breakdowns
    /// fire on every rank), and the scrub-vs-halve decision is reduced
    /// globally, so all ranks stay in lockstep through the ladder.
    ///
    /// Returns `(stats, substeps, recoveries)` on success; the caller
    /// still owns the enclosing `step` trace span on the error path.
    fn radiation_phase(
        &mut self,
        comm: &Comm,
        cx: &mut ExecCtx<'_>,
        dt: f64,
    ) -> Result<(RadStepStats, usize, u32), StepError> {
        let rad_stepper = RadStepper {
            limiter: self.cfg.limiter,
            opacity: self.cfg.opacity,
            c_light: self.cfg.c_light,
            precond: self.cfg.precond,
            solve: self.cfg.solve,
        };
        cx.enter("radiation");
        // Hydro provides the matter background when enabled.  The
        // temperature proxy fields are derived on the fly.
        let matter_fields = self.hydro.as_ref().map(|h| {
            let (stepper, state) = &**h;
            let (n1, n2) = (self.grid.n1, self.grid.n2);
            let mut rho = crate::field::Field2::new(n1, n2);
            let mut temp = crate::field::Field2::new(n1, n2);
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    let w = stepper.eos.to_prim(state.cons(i1 as isize, i2 as isize));
                    rho.set(i1 as isize, i2 as isize, w.rho);
                    temp.set(i1 as isize, i2 as isize, stepper.eos.temperature(&w));
                }
            }
            (rho, temp)
        });
        let matter = match &matter_fields {
            Some((rho, temp)) => MatterState::Fields { rho, temp },
            None => MatterState::Uniform,
        };

        let mut remaining = dt;
        let mut sub_dt = dt;
        let mut halvings = 0u32;
        let mut recoveries = 0u32;
        let mut rad_substeps = 0usize;
        let rad = loop {
            let take = sub_dt.min(remaining);
            match rad_stepper.try_step(
                comm,
                cx,
                self.cart,
                self.grid,
                &matter,
                take,
                self.erad,
                self.source,
                self.wks,
            ) {
                Ok(st) => {
                    remaining -= take;
                    rad_substeps += 1;
                    if remaining <= 0.0 {
                        break st;
                    }
                }
                Err(error) => {
                    // Rung 0: a communicator fault is not recoverable —
                    // the ladder's own scrub/halve decision is a
                    // collective, and the group is already poisoned or
                    // short a member.  Surface the typed verdict now.
                    if let Some(ce) = error.error.comm.clone() {
                        cx.exit("radiation");
                        return Err(StepError::Comm { istep: self.istep, error: ce });
                    }
                    // Rung 1: scrub non-finite cells (data poisoning
                    // shows up as a NonFinite breakdown) and retry at
                    // the same sub-timestep.  The decision is reduced
                    // globally so an injection on one rank walks every
                    // rank down the same rung.
                    let scrubbed = scrub_nonfinite(self.erad);
                    let global_scrubbed = match comm.try_allreduce_scalar(
                        cx,
                        coll_site::SCRUB_DECISION,
                        ReduceOp::Sum,
                        scrubbed as f64,
                    ) {
                        Ok(g) => g,
                        Err(ce) => {
                            cx.exit("radiation");
                            return Err(StepError::Comm { istep: self.istep, error: ce });
                        }
                    };
                    if global_scrubbed > 0.0 {
                        recoveries += 1;
                        cx.trace_instant(
                            "recovery",
                            &[
                                ("action", AttrVal::Str("scrub")),
                                ("cells_global", AttrVal::F64(global_scrubbed)),
                                ("dt", AttrVal::F64(take)),
                            ],
                        );
                        if let Some(inj) = cx.faults() {
                            inj.note(format!(
                                "recover: scrubbed {scrubbed} non-finite cells ({} global), retry at dt {take:.3e}",
                                global_scrubbed as usize
                            ));
                        }
                        continue;
                    }
                    // Rung 2: halve the sub-timestep (bounded).
                    if halvings < self.recovery.max_dt_halvings {
                        halvings += 1;
                        recoveries += 1;
                        sub_dt *= 0.5;
                        cx.trace_instant(
                            "recovery",
                            &[
                                ("action", AttrVal::Str("dt_halve")),
                                ("dt", AttrVal::F64(sub_dt)),
                                ("halvings", AttrVal::U64(halvings as u64)),
                            ],
                        );
                        if let Some(inj) = cx.faults() {
                            inj.note(format!(
                                "recover: halve dt to {sub_dt:.3e} ({halvings}/{})",
                                self.recovery.max_dt_halvings
                            ));
                        }
                        continue;
                    }
                    cx.exit("radiation");
                    return Err(StepError::Radiation { istep: self.istep, dt: take, error });
                }
            }
        };
        cx.exit("radiation");
        Ok((rad, rad_substeps, recoveries))
    }

    /// Close the exchange: implicit gas-temperature update against the
    /// freshly solved radiation field.
    fn matter_update_phase(&mut self, cx: &mut ExecCtx<'_>, dt: f64) {
        if let (Some(cp), Some(temp)) = (&self.cfg.coupling, self.temp.as_deref_mut()) {
            cx.enter("matter_update");
            let opacity = self.cfg.opacity;
            let at = move |i1: usize, i2: usize| {
                let _ = (i1, i2);
                opacity.eval(1.0, 1.0)
            };
            cp.update_temperature(cx, self.cfg.c_light, dt, &at, self.erad, temp);
            cx.exit("matter_update");
        }
    }
}

/// Map a [`FieldFault`]'s raw random words onto one interior cell of
/// the radiation field and corrupt it, returning the target
/// `(species, i1, i2)`.
fn apply_field_fault(erad: &mut TileVec, fault: FieldFault) -> (usize, usize, usize) {
    let (n1, n2) = (erad.n1(), erad.n2());
    let ncells = v2d_linalg::NSPEC * n1 * n2;
    let idx = (fault.r1 % ncells as u64) as usize;
    let s = idx / (n1 * n2);
    let i1 = (idx % (n1 * n2)) % n1;
    let i2 = (idx % (n1 * n2)) / n1;
    let old = erad.get(s, i1 as isize, i2 as isize);
    let bad = match fault.kind {
        FaultKind::FieldNan => f64::NAN,
        FaultKind::FieldInf => f64::INFINITY,
        FaultKind::FieldBitFlip => f64::from_bits(old.to_bits() ^ (1u64 << (fault.r2 % 64))),
        _ => old,
    };
    erad.set(s, i1 as isize, i2 as isize, bad);
    (s, i1, i2)
}

/// Replace non-finite interior cells of the radiation field with a
/// zero-energy floor, returning how many were scrubbed.
fn scrub_nonfinite(erad: &mut TileVec) -> usize {
    let (n1, n2) = (erad.n1(), erad.n2());
    let mut scrubbed = 0;
    for s in 0..v2d_linalg::NSPEC {
        for i2 in 0..n2 as isize {
            for i1 in 0..n1 as isize {
                if !erad.get(s, i1, i2).is_finite() {
                    erad.set(s, i1, i2, 0.0);
                    scrubbed += 1;
                }
            }
        }
    }
    scrubbed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Geometry;
    use v2d_comm::Spmd;
    use v2d_machine::CompilerProfile;

    fn small_cfg() -> V2dConfig {
        V2dConfig {
            grid: Grid2::new(12, 10, (0.0, 1.2), (0.0, 1.0), Geometry::Cartesian),
            limiter: Limiter::LevermorePomraning,
            opacity: OpacityModel::test_problem(),
            c_light: 1.0,
            dt: 1e-3,
            n_steps: 3,
            precond: PrecondKind::BlockJacobi,
            solve: SolveOpts::default(),
            hydro: None,
            coupling: None,
        }
    }

    #[test]
    fn run_performs_three_solves_per_step() {
        Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let cfg = small_cfg();
            let map = TileMap::new(cfg.grid.n1, cfg.grid.n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            sim.erad_mut().fill_with(|_, i1, i2| 1.0 + ((i1 + i2) as f64 * 0.3).sin().powi(2));
            let agg = sim.run(&ctx.comm, &mut ctx.sink);
            assert_eq!(agg.steps, 3);
            assert_eq!(agg.total_solves, 9);
            assert!(agg.total_iters >= 9);
            assert!((sim.time() - 3e-3).abs() < 1e-15);
            assert_eq!(sim.istep(), 3);
        });
    }

    #[test]
    fn profiler_splits_radiation_into_three_sites() {
        Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let cfg = small_cfg();
            let map = TileMap::new(cfg.grid.n1, cfg.grid.n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            sim.erad_mut().fill_interior(1.0);
            sim.step(&ctx.comm, &mut ctx.sink);
            let report = sim.profiler_report(&ctx.sink);
            for site in ["bicgstab_predictor", "bicgstab_corrector", "bicgstab_coupling"] {
                assert!(report.contains(site), "missing {site} in:\n{report}");
            }
            let rad = sim.profiler.routine("radiation").unwrap();
            let pred = sim.profiler.routine("bicgstab_predictor").unwrap();
            assert!(rad.inclusive > pred.inclusive);
        });
    }

    #[test]
    fn coupled_hydro_radiation_runs() {
        Spmd::new(2).with_profiles(vec![CompilerProfile::fujitsu()]).run(|ctx| {
            let mut cfg = small_cfg();
            cfg.hydro =
                Some(HydroConfig { gamma: 1.4, cfl: 0.4, bc: crate::hydro::HydroBc::outflow() });
            cfg.n_steps = 2;
            let map = TileMap::new(cfg.grid.n1, cfg.grid.n2, 2, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            sim.erad_mut().fill_interior(0.5);
            let st = sim.step(&ctx.comm, &mut ctx.sink);
            assert!(st.rad.all_converged());
            assert!(st.hydro_dt.is_some());
            assert!((st.hydro_dt.unwrap() - cfg.dt).abs() < 1e-12);
        });
    }

    #[test]
    fn energy_accounting_is_collective_and_consistent() {
        let totals = Spmd::new(4).with_profiles(vec![CompilerProfile::cray_opt()]).run(|ctx| {
            let cfg = small_cfg();
            let map = TileMap::new(cfg.grid.n1, cfg.grid.n2, 2, 2);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            sim.erad_mut().fill_interior(2.0);
            sim.total_radiation_energy(&ctx.comm, &mut ctx.sink)
        });
        // Every rank sees the same global total: 2 species × area × 2.0.
        let expect = 2.0 * 2.0 * (1.2 * 1.0);
        for t in totals {
            assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
        }
    }
}
