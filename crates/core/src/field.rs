//! Scalar tile fields with two-deep ghost frames.
//!
//! The radiation module stores its unknowns in `v2d_linalg::TileVec`
//! (two species, one ghost layer — the linear-solver shape); the hydro
//! module needs plain scalar fields with *two* ghost layers for the
//! MUSCL reconstruction.  [`Field2`] is that type, with its own halo
//! pack/unpack of width-2 strips.

use v2d_comm::topology::Dir;
use v2d_comm::{CartComm, Comm};
use v2d_machine::{ExecCtx, KernelClass};

/// Ghost width of hydro fields (MUSCL needs 2).
pub const NG: usize = 2;

/// A scalar field over the local tile with [`NG`] ghost layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    n1: usize,
    n2: usize,
    data: Vec<f64>,
}

impl Field2 {
    /// A zeroed field.
    pub fn new(n1: usize, n2: usize) -> Self {
        assert!(n1 >= 1 && n2 >= 1);
        Field2 { n1, n2, data: vec![0.0; (n1 + 2 * NG) * (n2 + 2 * NG)] }
    }

    /// Interior extents.
    pub fn n1(&self) -> usize {
        self.n1
    }

    pub fn n2(&self) -> usize {
        self.n2
    }

    #[inline]
    fn stride(&self) -> usize {
        self.n1 + 2 * NG
    }

    /// Flat index; interior indices are `0..n`, ghosts reach `−NG..0`
    /// and `n..n+NG`.
    #[inline]
    pub fn idx(&self, i1: isize, i2: isize) -> usize {
        debug_assert!((-(NG as isize)..=(self.n1 + NG - 1) as isize).contains(&i1));
        debug_assert!((-(NG as isize)..=(self.n2 + NG - 1) as isize).contains(&i2));
        (i2 + NG as isize) as usize * self.stride() + (i1 + NG as isize) as usize
    }

    /// Value at `(i1, i2)`.
    #[inline]
    pub fn get(&self, i1: isize, i2: isize) -> f64 {
        self.data[self.idx(i1, i2)]
    }

    /// Set value at `(i1, i2)`.
    #[inline]
    pub fn set(&mut self, i1: isize, i2: isize, v: f64) {
        let i = self.idx(i1, i2);
        self.data[i] = v;
    }

    /// Fill the interior from a closure over local indices.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> f64) {
        for i2 in 0..self.n2 {
            for i1 in 0..self.n1 {
                self.set(i1 as isize, i2 as isize, f(i1, i2));
            }
        }
    }

    /// Interior values, x1 fastest.
    pub fn interior_to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n1 * self.n2);
        for i2 in 0..self.n2 {
            for i1 in 0..self.n1 {
                out.push(self.get(i1 as isize, i2 as isize));
            }
        }
        out
    }

    /// Number of values in one width-NG edge strip.
    pub fn strip_len(&self, dir: Dir) -> usize {
        NG * match dir {
            Dir::West | Dir::East => self.n2,
            Dir::South | Dir::North => self.n1,
        }
    }

    /// Pack the owned strip adjacent to `dir` (the NG columns/rows a
    /// neighbor needs as its ghosts).
    pub fn pack_strip(&self, dir: Dir, buf: &mut Vec<f64>) {
        buf.clear();
        buf.reserve(self.strip_len(dir));
        match dir {
            Dir::West => {
                for g in 0..NG as isize {
                    for i2 in 0..self.n2 as isize {
                        buf.push(self.get(g, i2));
                    }
                }
            }
            Dir::East => {
                for g in 0..NG as isize {
                    for i2 in 0..self.n2 as isize {
                        buf.push(self.get(self.n1 as isize - NG as isize + g, i2));
                    }
                }
            }
            Dir::South => {
                for g in 0..NG as isize {
                    for i1 in 0..self.n1 as isize {
                        buf.push(self.get(i1, g));
                    }
                }
            }
            Dir::North => {
                for g in 0..NG as isize {
                    for i1 in 0..self.n1 as isize {
                        buf.push(self.get(i1, self.n2 as isize - NG as isize + g));
                    }
                }
            }
        }
    }

    /// Unpack a received strip into the ghost layers on side `dir`.
    pub fn unpack_strip(&mut self, dir: Dir, strip: &[f64]) {
        assert_eq!(strip.len(), self.strip_len(dir), "halo strip length mismatch");
        let mut k = 0;
        match dir {
            Dir::West => {
                for g in 0..NG as isize {
                    for i2 in 0..self.n2 as isize {
                        self.set(-(NG as isize) + g, i2, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::East => {
                for g in 0..NG as isize {
                    for i2 in 0..self.n2 as isize {
                        self.set(self.n1 as isize + g, i2, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::South => {
                for g in 0..NG as isize {
                    for i1 in 0..self.n1 as isize {
                        self.set(i1, -(NG as isize) + g, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::North => {
                for g in 0..NG as isize {
                    for i1 in 0..self.n1 as isize {
                        self.set(i1, self.n2 as isize + g, strip[k]);
                        k += 1;
                    }
                }
            }
        }
    }

    /// Fill the ghosts on side `dir` by copying the nearest interior
    /// value outward (zero-gradient / outflow boundary).
    pub fn outflow_ghost(&mut self, dir: Dir) {
        match dir {
            Dir::West => {
                for i2 in -(NG as isize)..(self.n2 + NG) as isize {
                    let i2c = i2.clamp(0, self.n2 as isize - 1);
                    for g in 1..=NG as isize {
                        let v = self.get(0, i2c);
                        self.set(-g, i2, v);
                    }
                }
            }
            Dir::East => {
                for i2 in -(NG as isize)..(self.n2 + NG) as isize {
                    let i2c = i2.clamp(0, self.n2 as isize - 1);
                    for g in 0..NG as isize {
                        let v = self.get(self.n1 as isize - 1, i2c);
                        self.set(self.n1 as isize + g, i2, v);
                    }
                }
            }
            Dir::South => {
                for i1 in -(NG as isize)..(self.n1 + NG) as isize {
                    let i1c = i1.clamp(0, self.n1 as isize - 1);
                    for g in 1..=NG as isize {
                        let v = self.get(i1c, 0);
                        self.set(i1, -g, v);
                    }
                }
            }
            Dir::North => {
                for i1 in -(NG as isize)..(self.n1 + NG) as isize {
                    let i1c = i1.clamp(0, self.n1 as isize - 1);
                    for g in 0..NG as isize {
                        let v = self.get(i1c, self.n2 as isize - 1);
                        self.set(i1, self.n2 as isize + g, v);
                    }
                }
            }
        }
    }

    /// Fill the ghosts on side `dir` by reflection, optionally negating
    /// (for the normal velocity component at a reflecting wall).
    pub fn reflect_ghost(&mut self, dir: Dir, negate: bool) {
        let sgn = if negate { -1.0 } else { 1.0 };
        match dir {
            Dir::West => {
                for i2 in -(NG as isize)..(self.n2 + NG) as isize {
                    let i2c = i2.clamp(0, self.n2 as isize - 1);
                    for g in 1..=NG as isize {
                        let v = self.get(g - 1, i2c);
                        self.set(-g, i2, sgn * v);
                    }
                }
            }
            Dir::East => {
                for i2 in -(NG as isize)..(self.n2 + NG) as isize {
                    let i2c = i2.clamp(0, self.n2 as isize - 1);
                    for g in 0..NG as isize {
                        let v = self.get(self.n1 as isize - 1 - g, i2c);
                        self.set(self.n1 as isize + g, i2, sgn * v);
                    }
                }
            }
            Dir::South => {
                for i1 in -(NG as isize)..(self.n1 + NG) as isize {
                    let i1c = i1.clamp(0, self.n1 as isize - 1);
                    for g in 1..=NG as isize {
                        let v = self.get(i1c, g - 1);
                        self.set(i1, -g, sgn * v);
                    }
                }
            }
            Dir::North => {
                for i1 in -(NG as isize)..(self.n1 + NG) as isize {
                    let i1c = i1.clamp(0, self.n1 as isize - 1);
                    for g in 0..NG as isize {
                        let v = self.get(i1c, self.n2 as isize - 1 - g);
                        self.set(i1, self.n2 as isize + g, sgn * v);
                    }
                }
            }
        }
    }
}

/// Halo-exchange a set of scalar fields: width-2 strips to/from each
/// neighbor (packed together per direction to amortize message latency),
/// outflow ghosts at physical boundaries.  Pack/unpack charges use the
/// context's ambient working set; callers scope it around the call.
pub fn exchange_fields(cart: &CartComm, comm: &Comm, cx: &mut ExecCtx, fields: &mut [&mut Field2]) {
    let mut send = Vec::new();
    let mut one = Vec::new();
    // Post all sends, then receive (see StencilOp::exchange_halos for
    // why the two-phase structure matters for the virtual clocks).
    for dir in Dir::ALL {
        if cart.neighbor(dir).is_some() {
            send.clear();
            for f in fields.iter() {
                f.pack_strip(dir, &mut one);
                send.extend_from_slice(&one);
            }
            cx.charge_streaming(KernelClass::Pack, send.len(), 0, 1, 1);
            cart.post(comm, cx, dir, &send);
        } else {
            for f in fields.iter_mut() {
                f.outflow_ghost(dir);
            }
        }
    }
    // `send` is idle once every direction is posted; receive through it
    // so the steady-state time-step loop performs no per-exchange
    // allocation (the transport buffer is recycled by `collect_into`).
    for dir in Dir::ALL {
        match cart.collect_into(comm, cx, dir, &mut send) {
            Ok(true) => {
                let strip = fields[0].strip_len(dir);
                assert_eq!(send.len(), strip * fields.len(), "bundled halo size mismatch");
                for (fi, f) in fields.iter_mut().enumerate() {
                    f.unpack_strip(dir, &send[fi * strip..(fi + 1) * strip]);
                }
                cx.charge_streaming(KernelClass::Pack, send.len(), 0, 1, 1);
            }
            Ok(false) => {}
            Err(e) => {
                // Lost/late strip under fault injection: hold the stale
                // ghost values for this step (see StencilOp's halo path
                // for the stream-realignment argument).
                if let Some(inj) = cx.faults() {
                    inj.note(format!("field halo recv failed ({e}); holding stale ghost"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    #[test]
    fn interior_and_ghost_indexing() {
        let mut f = Field2::new(4, 3);
        f.fill_with(|i1, i2| (i2 * 10 + i1) as f64);
        assert_eq!(f.get(0, 0), 0.0);
        assert_eq!(f.get(3, 2), 23.0);
        f.set(-2, -2, 7.0);
        f.set(5, 4, 9.0);
        assert_eq!(f.get(-2, -2), 7.0);
        assert_eq!(f.get(5, 4), 9.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = Field2::new(5, 4);
        a.fill_with(|i1, i2| (i2 * 100 + i1) as f64);
        let mut b = Field2::new(5, 4);
        let mut buf = Vec::new();
        // a's east strip becomes b's west ghosts in a real exchange;
        // here we just verify pack→unpack symmetry per side.
        for dir in Dir::ALL {
            a.pack_strip(dir, &mut buf);
            b.unpack_strip(dir, &buf);
        }
        // b's west ghosts must hold a's two westmost columns.
        for i2 in 0..4isize {
            assert_eq!(b.get(-2, i2), a.get(0, i2));
            assert_eq!(b.get(-1, i2), a.get(1, i2));
            assert_eq!(b.get(5, i2), a.get(3, i2));
            assert_eq!(b.get(6, i2), a.get(4, i2));
        }
    }

    #[test]
    fn outflow_ghosts_copy_edge_values() {
        let mut f = Field2::new(3, 3);
        f.fill_with(|i1, i2| (1 + i1 + 10 * i2) as f64);
        for dir in Dir::ALL {
            f.outflow_ghost(dir);
        }
        assert_eq!(f.get(-1, 1), f.get(0, 1));
        assert_eq!(f.get(-2, 1), f.get(0, 1));
        assert_eq!(f.get(3, 0), f.get(2, 0));
        assert_eq!(f.get(1, -2), f.get(1, 0));
        // corners take clamped values
        assert_eq!(f.get(-1, -1), f.get(0, 0));
    }

    #[test]
    fn reflect_ghosts_mirror_and_negate() {
        let mut f = Field2::new(4, 2);
        f.fill_with(|i1, _| i1 as f64 + 1.0);
        f.reflect_ghost(Dir::West, true);
        assert_eq!(f.get(-1, 0), -1.0); // mirror of i1=0
        assert_eq!(f.get(-2, 0), -2.0); // mirror of i1=1
        f.reflect_ghost(Dir::East, false);
        assert_eq!(f.get(4, 1), 4.0); // mirror of i1=3
        assert_eq!(f.get(5, 1), 3.0); // mirror of i1=2
    }

    #[test]
    fn exchange_moves_two_deep_strips_between_ranks() {
        let map = TileMap::new(8, 4, 2, 1);
        let outs = Spmd::new(2).with_profiles(vec![CompilerProfile::fujitsu()]).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let t = cart.tile();
            let mut f = Field2::new(t.n1, t.n2);
            f.fill_with(|i1, i2| ((t.i1_start + i1) * 10 + i2) as f64);
            exchange_fields(&cart, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut [&mut f]);
            // Rank 0 owns i1 ∈ 0..4; its east ghosts are global 4,5.
            // Rank 1 owns 4..8; its west ghosts are global 2,3.
            (f.get(-2, 1), f.get(-1, 1), f.get(4, 1), f.get(5, 1))
        });
        // rank 0: west is physical (outflow of global 0), east from rank 1.
        assert_eq!(outs[0].2, 41.0);
        assert_eq!(outs[0].3, 51.0);
        assert_eq!(outs[0].0, 1.0);
        // rank 1: west ghosts are global 2,3.
        assert_eq!(outs[1].0, 21.0);
        assert_eq!(outs[1].1, 31.0);
    }
}
