//! # v2d-core — the V2D radiation-hydrodynamics application
//!
//! A Rust reconstruction of the V2D code studied by the paper (Swesty &
//! Myra 2009, ApJS 181:1): finite-difference/finite-volume solvers for
//! the equations of Eulerian hydrodynamics and multi-species flux-limited
//! diffusive radiation transport in two spatial dimensions, domain-
//! decomposed over the `v2d-comm` substrate, with the implicit radiation
//! update solved by the ganged-reduction BiCGSTAB of `v2d-linalg`.
//!
//! Structure:
//!
//! * [`grid`] — the 2-D structured grid with orthogonal coordinate
//!   systems (Cartesian, cylindrical r–z, spherical r–θ): V2D "has been
//!   generically written to allow various coordinate systems" (§I-C);
//! * [`field`] — scalar tile fields with two-deep ghost frames for the
//!   hydro reconstruction;
//! * [`opacity`], [`limiter`] — the microphysics closures: opacity
//!   models and the flux limiters (Levermore–Pomraning, Wilson) that
//!   close the diffusion approximation;
//! * [`rad`] — the multigroup flux-limited diffusion module: coefficient
//!   assembly into the matrix-free stencil operator and the implicit
//!   stepper that performs the paper's **three linear-system solves per
//!   timestep**;
//! * [`hydro`] — the explicit Eulerian hydrodynamics module
//!   (MUSCL–Hancock with HLL fluxes, gamma-law EOS), frozen for the
//!   paper's radiation test problem but exercised by its own tests and
//!   examples;
//! * [`problems`] — initial/boundary conditions: the 2-D Gaussian
//!   radiation pulse of the study, a Sod shock tube, and a radiative
//!   relaxation problem;
//! * [`sim`] — the [`sim::V2dSim`] driver tying it together;
//! * [`config_file`] — the runtime parameter-file reader (V2D-style
//!   `key = value` decks, including the NPRX1/NPRX2 topology knobs);
//! * [`checkpoint`] — HDF5-style (h5lite) parallel checkpoint/restart;
//! * [`supervise`] — the fault-tolerant run supervisor: checkpoint
//!   rollback, bounded retries with deterministic virtual-clock backoff,
//!   and shrinking re-decomposition after permanent rank loss.

// Library code recovers through typed errors (SolveError,
// CheckpointError, ParError) rather than panicking; tests and binaries
// (separate crates) are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod config_file;
pub mod field;
pub mod grid;
pub mod hydro;
pub mod limiter;
pub mod opacity;
pub mod problems;
pub mod rad;
pub mod sim;
pub mod supervise;

pub use grid::{Geometry, Grid2, LocalGrid};
pub use limiter::Limiter;
pub use opacity::OpacityModel;
pub use sim::{PrecondKind, RecoveryPolicy, StepError, StepStats, V2dConfig, V2dSim};
pub use supervise::{
    run_supervised, run_supervised_on, RecoveryLedger, RetryPolicy, SuperviseError,
    SuperviseReport, SuperviseSpec,
};
