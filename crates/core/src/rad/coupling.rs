//! Matter–radiation energy coupling.
//!
//! The full V2D evolves the material energy alongside the radiation
//! field: matter at temperature `T` emits `c·κ_a·B_s(T)` into each
//! species and absorbs `c·κ_a·E_s` from it.  The paper's benchmark
//! freezes this physics, but it is part of the code (and of the
//! "interspersed physics routines" overhead story), so the module is
//! implemented fully:
//!
//! * emission source assembly (feeds the implicit radiation solve), and
//! * the pointwise *implicit* gas-energy update — a scalar Newton solve
//!   per zone for the end-of-step temperature, unconditionally stable in
//!   the stiff-coupling limit.
//!
//! With `e_gas = c_v·T` and Planck-like emission `B_s(T) = f_s·a·T⁴`
//! (with `Σf_s = 1`), backward Euler for the exchange reads
//!
//! ```text
//! c_v (T¹ − T⁰)/dt = Σ_s c κ_a,s (E_s¹ − f_s a (T¹)⁴)
//! ```
//!
//! given the freshly solved radiation field `E¹`.  The residual is
//! monotone in `T¹`, so Newton from `T⁰` converges quadratically.

use v2d_linalg::{TileVec, NSPEC};
use v2d_machine::{ExecCtx, KernelClass, KernelShape};

use crate::field::Field2;
use crate::opacity::ZoneOpacity;

/// Coupling closure parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatterCoupling {
    /// Gas heat capacity (e_gas = c_v · T).
    pub cv: f64,
    /// Radiation constant in `B = a·T⁴`.
    pub a_rad: f64,
    /// Fraction of the emission entering each species (sums to 1).
    pub split: [f64; NSPEC],
}

impl MatterCoupling {
    /// A coupling with an even split; asserts parameter sanity.
    pub fn new(cv: f64, a_rad: f64, split: [f64; NSPEC]) -> Self {
        assert!(cv > 0.0 && a_rad > 0.0, "cv and a must be positive");
        let sum: f64 = split.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-12 && split.iter().all(|&f| f >= 0.0),
            "emission split must be a partition of unity, got {split:?}"
        );
        MatterCoupling { cv, a_rad, split }
    }

    /// Emission into species `s` at temperature `t`.
    pub fn emission(&self, s: usize, t: f64) -> f64 {
        self.split[s] * self.a_rad * t.powi(4)
    }

    /// The radiation *source* field for the implicit solve: species `s`
    /// receives `c·κ_a,s·B_s(T)` per unit time, evaluated at the
    /// beginning-of-step temperature (the radiation solve then treats it
    /// as fixed — one leg of the operator splitting).
    pub fn emission_source(
        &self,
        cx: &mut ExecCtx,
        c_light: f64,
        opacity_at: &dyn Fn(usize, usize) -> ZoneOpacity,
        temp: &Field2,
        out: &mut TileVec,
    ) {
        let (n1, n2) = (out.n1(), out.n2());
        for s in 0..NSPEC {
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    let t = temp.get(i1 as isize, i2 as isize);
                    let kap = opacity_at(i1, i2).kappa_a[s];
                    out.set(s, i1 as isize, i2 as isize, c_light * kap * self.emission(s, t));
                }
            }
        }
        cx.charge(&KernelShape::streaming(
            KernelClass::Physics,
            n1 * n2 * NSPEC,
            10,
            2,
            2,
            16 * out.bytes(),
        ));
    }

    /// Implicit gas-temperature update after the radiation solve: one
    /// scalar Newton iteration per zone on the backward-Euler exchange
    /// residual.  Returns the maximum Newton iteration count (diagnostic).
    ///
    /// # Panics
    /// If Newton fails to converge in 50 iterations anywhere (a sign of
    /// unphysical inputs).
    pub fn update_temperature(
        &self,
        cx: &mut ExecCtx,
        c_light: f64,
        dt: f64,
        opacity_at: &dyn Fn(usize, usize) -> ZoneOpacity,
        erad: &TileVec,
        temp: &mut Field2,
    ) -> usize {
        let (n1, n2) = (temp.n1(), temp.n2());
        let mut worst = 0usize;
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                let t0 = temp.get(i1 as isize, i2 as isize);
                assert!(t0 > 0.0, "non-positive temperature at ({i1},{i2}): {t0}");
                let op = opacity_at(i1, i2);
                // Residual F(T) = cv(T−T0) − dt·Σ c κ_a (E_s − f_s a T⁴)
                let absorbed: f64 = (0..NSPEC)
                    .map(|s| c_light * op.kappa_a[s] * erad.get(s, i1 as isize, i2 as isize))
                    .sum();
                let kap_b: f64 =
                    (0..NSPEC).map(|s| c_light * op.kappa_a[s] * self.split[s] * self.a_rad).sum();
                // F is increasing and convex for T > 0, and the root lies
                // below max(T0, (absorbed/kapB)^¼); starting Newton from
                // that upper bound makes the iteration monotone
                // decreasing with quadratic convergence — no safeguards
                // or damping needed.
                let mut t = if kap_b > 0.0 {
                    t0.max((absorbed / kap_b).powf(0.25))
                } else {
                    t0 + dt * absorbed / self.cv
                };
                let mut iters = 0;
                loop {
                    let f = self.cv * (t - t0) - dt * (absorbed - kap_b * t.powi(4));
                    let df = self.cv + 4.0 * dt * kap_b * t.powi(3);
                    let step = f / df;
                    t -= step;
                    iters += 1;
                    if step.abs() <= 1e-13 * (1.0 + t.abs()) {
                        break;
                    }
                    assert!(iters < 60, "Newton stalled at ({i1},{i2}): T={t}, step={step}");
                }
                worst = worst.max(iters);
                temp.set(i1 as isize, i2 as isize, t);
            }
        }
        cx.charge(&KernelShape::streaming(
            KernelClass::Physics,
            n1 * n2,
            120,
            3,
            1,
            16 * 8 * n1 * n2,
        ));
        worst
    }

    /// Energy the gas *gained* this step (per zone, for conservation
    /// accounting): `c_v·(T¹ − T⁰)`.
    pub fn gas_energy(&self, temp: &Field2) -> f64 {
        temp.interior_to_vec().iter().map(|&t| self.cv * t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::OpacityModel;
    use v2d_machine::{CompilerProfile, MultiCostSink};

    fn sink() -> MultiCostSink {
        MultiCostSink::single(CompilerProfile::cray_opt())
    }

    fn opac() -> OpacityModel {
        OpacityModel::Constant { kappa_a: [0.5, 0.5], kappa_s: [1.0, 1.0], kappa_x: 0.0 }
    }

    #[test]
    fn split_must_sum_to_one() {
        let r = std::panic::catch_unwind(|| MatterCoupling::new(1.0, 1.0, [0.7, 0.6]));
        assert!(r.is_err());
    }

    #[test]
    fn emission_source_scales_as_t4() {
        let cp = MatterCoupling::new(1.0, 2.0, [0.25, 0.75]);
        let mut sk = sink();
        let mut temp = Field2::new(4, 3);
        temp.fill_with(|i1, _| 1.0 + i1 as f64);
        let mut src = TileVec::new(4, 3);
        let model = opac();
        let at = move |i1: usize, i2: usize| {
            let _ = (i1, i2);
            model.eval(1.0, 1.0)
        };
        cp.emission_source(&mut ExecCtx::new(&mut sk), 1.0, &at, &temp, &mut src);
        // zone (1,0): T = 2 → B_0 = 0.25·2·16 = 8; source = c·κ_a·B = 4.
        assert!((src.get(0, 1, 0) - 0.5 * 8.0).abs() < 1e-12);
        assert!((src.get(1, 1, 0) - 0.5 * 24.0).abs() < 1e-12);
    }

    #[test]
    fn newton_finds_equilibrium_in_the_stiff_limit() {
        // Huge dt: T must land where emission balances absorption,
        // a·T⁴ = ΣE (for even split and equal opacities).
        let cp = MatterCoupling::new(1.0, 1.0, [0.5, 0.5]);
        let mut sk = sink();
        let mut temp = Field2::new(2, 2);
        temp.fill_with(|_, _| 1.0);
        let mut erad = TileVec::new(2, 2);
        erad.fill_interior(8.0); // ΣE = 16 → T_eq = 2 since a(T⁴)=16
        let model = opac();
        let at = move |_: usize, _: usize| model.eval(1.0, 1.0);
        cp.update_temperature(&mut ExecCtx::new(&mut sk), 1.0, 1e9, &at, &erad, &mut temp);
        let t = temp.get(0, 0);
        assert!((t - 2.0).abs() < 1e-6, "stiff limit should hit a·T⁴ = ΣE: T = {t}");
    }

    #[test]
    fn small_dt_matches_explicit_rate() {
        // For tiny dt the implicit update reduces to
        // ΔT ≈ dt/cv · Σ cκ(E − f a T⁴).
        let cp = MatterCoupling::new(2.0, 1.0, [0.5, 0.5]);
        let mut sk = sink();
        let mut temp = Field2::new(2, 2);
        temp.fill_with(|_, _| 1.0);
        let mut erad = TileVec::new(2, 2);
        erad.fill_interior(3.0);
        let model = opac();
        let at = move |_: usize, _: usize| model.eval(1.0, 1.0);
        let dt = 1e-6;
        cp.update_temperature(&mut ExecCtx::new(&mut sk), 1.0, dt, &at, &erad, &mut temp);
        // rate = Σ cκ(E − 0.5·T⁴) = 2·0.5·(3 − 0.5) = 2.5; ΔT = dt·rate/cv.
        let want = 1.0 + dt * 2.5 / 2.0;
        let got = temp.get(1, 1);
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn update_conserves_exchange_energy_against_emission() {
        // The gas gains exactly dt·Σcκ(E − B(T¹)) per zone — check the
        // budget the stepper relies on.
        let cp = MatterCoupling::new(1.5, 0.8, [0.6, 0.4]);
        let mut sk = sink();
        let mut temp = Field2::new(3, 3);
        temp.fill_with(|i1, i2| 0.8 + 0.1 * (i1 + i2) as f64);
        let t_before = temp.clone();
        let mut erad = TileVec::new(3, 3);
        erad.fill_with(|s, i1, i2| 1.0 + 0.2 * (s + i1 + 2 * i2) as f64);
        let model = opac();
        let at = move |_: usize, _: usize| model.eval(1.0, 1.0);
        let dt = 0.37;
        cp.update_temperature(&mut ExecCtx::new(&mut sk), 1.0, dt, &at, &erad, &mut temp);
        for i2 in 0..3isize {
            for i1 in 0..3isize {
                let t1 = temp.get(i1, i2);
                let t0 = t_before.get(i1, i2);
                let op = model.eval(1.0, 1.0);
                let rhs: f64 = (0..NSPEC)
                    .map(|s| {
                        op.kappa_a[s] * (erad.get(s, i1, i2) - cp.split[s] * cp.a_rad * t1.powi(4))
                    })
                    .sum();
                assert!(
                    (cp.cv * (t1 - t0) - dt * rhs).abs() < 1e-9,
                    "budget violated at ({i1},{i2})"
                );
            }
        }
    }

    #[test]
    fn newton_is_robust_to_cold_gas_hot_radiation() {
        let cp = MatterCoupling::new(1.0, 1.0, [0.5, 0.5]);
        let mut sk = sink();
        let mut temp = Field2::new(1, 1);
        temp.fill_with(|_, _| 1e-6);
        let mut erad = TileVec::new(1, 1);
        erad.fill_interior(1e6);
        let model = opac();
        let at = move |_: usize, _: usize| model.eval(1.0, 1.0);
        let iters =
            cp.update_temperature(&mut ExecCtx::new(&mut sk), 1.0, 100.0, &at, &erad, &mut temp);
        let t = temp.get(0, 0);
        assert!(t > 1.0 && t.is_finite(), "T = {t}");
        assert!(iters < 50);
    }
}
