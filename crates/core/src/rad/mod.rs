//! Multigroup flux-limited diffusion radiation transport.
//!
//! [`coeffs`] assembles the implicit backward-Euler system — the
//! `x1 × x2 × 2` sparse matrix of the paper, in matrix-free stencil form
//! — from the current radiation field, the flux limiter, the opacities
//! and the grid metric.  [`stepper`] advances one timestep by solving
//! **three** such systems with the ganged-reduction BiCGSTAB, matching
//! the paper's "each time step requires the solution of three unique
//! x1 × x2 × 2 linear systems" (§II-D).

pub mod coeffs;
pub mod coupling;
pub mod stepper;

pub use coeffs::{assemble_system, MatterState};
pub use coupling::MatterCoupling;
pub use stepper::{RadStepError, RadStepStats, RadStepper};
