//! Assembly of the implicit radiation system.
//!
//! Backward-Euler discretization of the two-species FLD equations
//!
//! ```text
//! ∂E_s/∂t = ∇·(D_s ∇E_s) − c κ_a,s E_s + c κ_x (E_o − E_s) + S_s
//! ```
//!
//! over one timestep `dt` gives, per zone and species,
//!
//! ```text
//! (1 + dt·c·κ_a + dt·c·κ_x + Σ_f dt·A_f·D_f/(V·Δx)) E_s
//!   − Σ_f dt·A_f·D_f/(V·Δx) E_nbr  − dt·c·κ_x E_o  =  E_sⁿ + dt·S_s
//! ```
//!
//! with face diffusion coefficients `D_f = c·λ(R_f)/κ_t,f` evaluated
//! from the *current* iterate of the radiation field (the nonlinearity
//! the stepper fixed-point iterates over).  Homogeneous Dirichlet
//! boundaries come for free from the zero ghost frame: the boundary
//! column simply does not exist.
//!
//! The assembly is multi-physics work — table lookups, limiter
//! transcendentals, metric factors — and is charged to the cost model as
//! [`KernelClass::Physics`], which no studied compiler vectorizes.  This
//! is the mechanism behind the paper's headline observation that the
//! full code speeds up far less under SVE than its solver kernels.

use v2d_comm::{CartComm, Comm};
use v2d_linalg::{StencilCoeffs, StencilOp, TileVec, NSPEC};
use v2d_machine::{ExecCtx, KernelClass, KernelShape};

use crate::field::Field2;
use crate::grid::LocalGrid;
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;

/// Matter background the opacities are evaluated from.
#[derive(Debug, Clone, Copy)]
pub enum MatterState<'a> {
    /// Uniform unit density and temperature (the pure radiation test).
    Uniform,
    /// Fields from the hydro module.
    Fields { rho: &'a Field2, temp: &'a Field2 },
}

impl MatterState<'_> {
    fn at(&self, i1: usize, i2: usize) -> (f64, f64) {
        match self {
            MatterState::Uniform => (1.0, 1.0),
            MatterState::Fields { rho, temp } => {
                (rho.get(i1 as isize, i2 as isize), temp.get(i1 as isize, i2 as isize))
            }
        }
    }
}

/// Floor for face energies inside the limiter argument (avoids 0/0 in
/// evacuated zones).
const E_FLOOR: f64 = 1e-30;

/// Assemble the stencil coefficients and right-hand side for one
/// backward-Euler radiation solve.
///
/// The flux-limiter nonlinearity is evaluated at `lin_state` (whose
/// ghost frame this function refreshes), while the right-hand side
/// carries `rhs_state` — the beginning-of-step field `Eⁿ` — plus
/// `dt·source`.  Separating the two is what lets the stepper fixed-point
/// iterate the coefficients without double-stepping the data.
#[allow(clippy::too_many_arguments)]
pub fn assemble_system(
    comm: &Comm,
    cx: &mut ExecCtx,
    cart: &CartComm,
    grid: &LocalGrid,
    limiter: Limiter,
    opacity: &OpacityModel,
    matter: &MatterState,
    c_light: f64,
    dt: f64,
    lin_state: &mut TileVec,
    rhs_state: &TileVec,
    source: &TileVec,
) -> (StencilOp, TileVec) {
    assert!(dt > 0.0 && c_light > 0.0, "dt and c must be positive");
    let (n1, n2) = (grid.n1, grid.n2);
    let g = &grid.global;

    // Fresh ghosts for the face-gradient evaluation.
    let mut buf = Vec::new();
    let ws = 16 * lin_state.bytes();
    let old_ws = cx.set_ws(ws);
    StencilOp::exchange_halos(cart, comm, cx, lin_state, &mut buf);
    cx.set_ws(old_ws);

    let mut c = StencilCoeffs::new(n1, n2);
    let mut rhs = TileVec::new(n1, n2);

    // Zone opacities (evaluated once per zone, shared by faces).
    // κ at a face is the arithmetic mean of the adjacent zones; at a
    // physical boundary the zone value is used.
    let kap = |i1: usize, i2: usize| {
        let (rho, t) = matter.at(i1, i2);
        opacity.eval(rho, t)
    };

    for s in 0..NSPEC {
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                let (g1, g2) = grid.to_global(i1, i2);
                let li1 = i1 as isize;
                let li2 = i2 as isize;
                let here = kap(i1, i2);
                let e_c = lin_state.get(s, li1, li2);

                let dx1 = g.dx1_centers();
                let dx2 = g.dx2_centers(g1);
                let vol = g.volume(g1, g2);

                // Face diffusion coefficient toward a neighbor at
                // (di1, di2); `interior` is false at the physical edge
                // (the ghost is zero there, and κ_face = κ_zone).
                let face_d = |di1: isize, di2: isize, dx: f64| -> f64 {
                    let (ni1, ni2) = (li1 + di1, li2 + di2);
                    let in1 = g1 as isize + di1;
                    let in2 = g2 as isize + di2;
                    let interior =
                        in1 >= 0 && in2 >= 0 && (in1 as usize) < g.n1 && (in2 as usize) < g.n2;
                    let kt_nbr = if interior
                        && (0..n1 as isize).contains(&ni1)
                        && (0..n2 as isize).contains(&ni2)
                    {
                        kap(ni1 as usize, ni2 as usize).kappa_t[s]
                    } else {
                        // Neighbor owned by another rank (its opacity is
                        // whatever the same closure gives: for the models
                        // here opacity is a pure function of matter state,
                        // which is Uniform in the decomposed radiation
                        // test) or a physical boundary.
                        here.kappa_t[s]
                    };
                    let kt_face = 0.5 * (here.kappa_t[s] + kt_nbr);
                    let e_nbr = lin_state.get(s, ni1, ni2);
                    let grad = (e_nbr - e_c) / dx;
                    let e_face = 0.5 * (e_c + e_nbr).max(E_FLOOR);
                    let r = grad.abs() / (kt_face * e_face);
                    c_light * limiter.lambda(r) / kt_face
                };

                let dw = face_d(-1, 0, dx1);
                let de = face_d(1, 0, dx1);
                let ds = face_d(0, -1, dx2);
                let dn = face_d(0, 1, dx2);

                // Metric face areas (global indices; +1 faces).
                let a_w = g.area1(g1, g2);
                let a_e = g.area1(g1 + 1, g2);
                let a_s = g.area2(g1, g2);
                let a_n = g.area2(g1, g2 + 1);

                let tw = dt * a_w * dw / (vol * dx1);
                let te = dt * a_e * de / (vol * dx1);
                let ts = dt * a_s * ds / (vol * dx2);
                let tn = dt * a_n * dn / (vol * dx2);

                let sigma = dt * c_light * (here.kappa_a[s] + here.kappa_x);

                c.cc.set(s, li1, li2, 1.0 + sigma + tw + te + ts + tn);
                c.cw.set(s, li1, li2, -tw);
                c.ce.set(s, li1, li2, -te);
                c.cs.set(s, li1, li2, -ts);
                c.cn.set(s, li1, li2, -tn);
                c.cpl.set(s, li1, li2, -dt * c_light * here.kappa_x);

                rhs.set(s, li1, li2, rhs_state.get(s, li1, li2) + dt * source.get(s, li1, li2));
            }
        }
    }

    // Multi-physics assembly cost: limiter transcendentals, opacity
    // evaluation, metric factors — scalar work in every compiler model.
    cx.charge(&KernelShape::streaming(KernelClass::Physics, n1 * n2 * NSPEC, 60, 4, 7, ws));

    (StencilOp::new(c, *cart), rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Geometry, Grid2};
    use v2d_comm::{Spmd, TileMap};
    use v2d_linalg::LinearOp;
    use v2d_machine::CompilerProfile;

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    fn setup(n1: usize, n2: usize) -> (Grid2, TileMap) {
        (
            Grid2::new(n1, n2, (0.0, n1 as f64), (0.0, n2 as f64), Geometry::Cartesian),
            TileMap::new(n1, n2, 1, 1),
        )
    }

    #[test]
    fn assembled_matrix_is_diagonally_dominant_m_matrix() {
        let (g, map) = setup(8, 6);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(8, 6);
            e.fill_with(|s, i1, i2| 1.0 + 0.1 * ((s + i1 + i2) as f64).sin());
            let src = TileVec::new(8, 6);
            let (op, _rhs) = assemble_system(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                Limiter::LevermorePomraning,
                &OpacityModel::test_problem(),
                &MatterState::Uniform,
                1.0,
                0.5,
                &mut e.clone(),
                &e,
                &src,
            );
            for s in 0..NSPEC {
                for i2 in 0..6isize {
                    for i1 in 0..8isize {
                        let cc = op.coeffs.cc.get(s, i1, i2);
                        let off = op.coeffs.cw.get(s, i1, i2).abs()
                            + op.coeffs.ce.get(s, i1, i2).abs()
                            + op.coeffs.cs.get(s, i1, i2).abs()
                            + op.coeffs.cn.get(s, i1, i2).abs()
                            + op.coeffs.cpl.get(s, i1, i2).abs();
                        assert!(cc > 0.0, "non-positive diagonal");
                        assert!(
                            cc >= off + 1.0 - 1e-12,
                            "dominance violated: {cc} vs {off} at ({s},{i1},{i2})"
                        );
                        // Off-diagonals non-positive: M-matrix structure.
                        assert!(op.coeffs.cw.get(s, i1, i2) <= 0.0);
                        assert!(op.coeffs.cpl.get(s, i1, i2) <= 0.0);
                    }
                }
            }
        });
    }

    #[test]
    fn uniform_field_unlimited_gives_identity_plus_absorption() {
        // With E constant, ∇E = 0 at interior faces, so interior rows of
        // A·E reduce to (1 + dt·c·(κ_a+κ_x))·E − dt·c·κ_x·E (diffusion
        // terms cancel).  Check via an operator application.
        let (g, map) = setup(10, 10);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(10, 10);
            e.fill_interior(2.0);
            let src = TileVec::new(10, 10);
            let (kappa_a, kappa_x, dt, c_l) = ([0.1, 0.2], 0.05, 0.3, 1.0);
            let (mut op, _rhs) = assemble_system(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                Limiter::None,
                &OpacityModel::Constant { kappa_a, kappa_s: [1.0, 1.0], kappa_x },
                &MatterState::Uniform,
                c_l,
                dt,
                &mut e.clone(),
                &e,
                &src,
            );
            let mut x = TileVec::new(10, 10);
            x.fill_interior(2.0);
            let mut y = TileVec::new(10, 10);
            op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut y);
            // Interior zone (5,5), species 0.
            let expect = (1.0 + dt * c_l * (kappa_a[0] + kappa_x)) * 2.0 - dt * c_l * kappa_x * 2.0;
            assert!((y.get(0, 5, 5) - expect).abs() < 1e-12, "{} vs {expect}", y.get(0, 5, 5));
        });
    }

    #[test]
    fn rhs_carries_previous_energy_plus_source() {
        let (g, map) = setup(4, 4);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(4, 4);
            e.fill_interior(3.0);
            let mut src = TileVec::new(4, 4);
            src.fill_interior(10.0);
            let (_op, rhs) = assemble_system(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                Limiter::None,
                &OpacityModel::test_problem(),
                &MatterState::Uniform,
                1.0,
                0.25,
                &mut e.clone(),
                &e,
                &src,
            );
            assert!((rhs.get(1, 2, 2) - (3.0 + 0.25 * 10.0)).abs() < 1e-14);
        });
    }

    #[test]
    fn assembly_charges_physics_class() {
        let (g, map) = setup(6, 6);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(6, 6);
            e.fill_interior(1.0);
            let src = TileVec::new(6, 6);
            let before = ctx.sink.lanes[0].counters.calls[KernelClass::Physics.index()];
            let _ = assemble_system(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                Limiter::Wilson,
                &OpacityModel::test_problem(),
                &MatterState::Uniform,
                1.0,
                0.1,
                &mut e.clone(),
                &e,
                &src,
            );
            let after = ctx.sink.lanes[0].counters.calls[KernelClass::Physics.index()];
            assert_eq!(after, before + 1);
        });
    }

    #[test]
    fn decomposed_assembly_matches_single_rank() {
        // The operator built on 4 ranks must act identically to the
        // single-rank one (face D at tile seams must agree).
        let (n1, n2) = (12, 8);
        let g = Grid2::new(n1, n2, (0.0, 3.0), (0.0, 2.0), Geometry::Cartesian);
        let apply_global = |np1: usize, np2: usize| {
            let map = TileMap::new(n1, n2, np1, np2);
            let outs = Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let t = cart.tile();
                let grid = LocalGrid::new(g, t);
                let mut e = TileVec::new(t.n1, t.n2);
                e.fill_with(|s, i1, i2| {
                    let (g1, g2) = grid.to_global(i1, i2);
                    1.0 + 0.5 * (((g1 * 3 + g2 * 7 + s) as f64) * 0.21).sin()
                });
                let src = TileVec::new(t.n1, t.n2);
                let (mut op, _rhs) = assemble_system(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &cart,
                    &grid,
                    Limiter::LevermorePomraning,
                    &OpacityModel::test_problem(),
                    &MatterState::Uniform,
                    1.0,
                    0.4,
                    &mut e.clone(),
                    &e,
                    &src,
                );
                let mut x = e.clone();
                let mut y = TileVec::new(t.n1, t.n2);
                op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut y);
                let mut out = Vec::new();
                for s in 0..NSPEC {
                    for i2 in 0..t.n2 {
                        for i1 in 0..t.n1 {
                            out.push((
                                (s, t.i1_start + i1, t.i2_start + i2),
                                y.get(s, i1 as isize, i2 as isize),
                            ));
                        }
                    }
                }
                out
            });
            let mut all: Vec<_> = outs.into_iter().flatten().collect();
            all.sort_by_key(|&((s, a, b), _)| (s, b, a));
            all.into_iter().map(|(_, v)| v).collect::<Vec<f64>>()
        };
        let single = apply_global(1, 1);
        let multi = apply_global(2, 2);
        for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
            assert!((a - b).abs() < 1e-12, "A·E differs at {i}: {a} vs {b}");
        }
    }
}
