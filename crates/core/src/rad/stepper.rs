//! The implicit radiation stepper: three linear solves per timestep.
//!
//! The paper's Table I workload "time-evolves the radiation energy
//! density for 100 time steps.  Each time step requires the solution of
//! three unique x1 × x2 × 2 linear systems via the BiCGSTAB algorithm."
//! The three systems here are the fixed-point sweeps of V2D-style
//! nonlinear handling of the flux limiter and the energy-exchange
//! coupling, all full steps from `Eⁿ` with successively re-linearized
//! coefficients:
//!
//! 1. **Predictor** — coefficients frozen at `Eⁿ`;
//! 2. **Corrector** — coefficients re-evaluated at the predictor state;
//! 3. **Coupling/limiter sweep** — one more re-evaluation at the
//!    corrector state (for a linear problem the three matrices coincide;
//!    for the nonlinear problem each sweep tightens the linearization).
//!
//! Every sweep starts from the beginning-of-step field, as V2D does —
//! which is why the paper's Arm MAP analysis sees the three BiCGSTAB
//! call sites at nearly equal thirds of the runtime.
//!
//! Each stage assembles fresh stencil coefficients (Physics work),
//! rebuilds the preconditioner, and calls the ganged-reduction BiCGSTAB.

use v2d_comm::{CartComm, Comm};
use v2d_linalg::{
    solve_cascade, BlockJacobi, Identity, Jacobi, SolveError, SolveOpts, SolveStats,
    SolverWorkspace, Spai, TileVec,
};
use v2d_machine::ExecCtx;

use crate::grid::LocalGrid;
use crate::limiter::Limiter;
use crate::opacity::OpacityModel;
use crate::rad::coeffs::{assemble_system, MatterState};
use crate::sim::PrecondKind;

/// Per-step radiation statistics: one [`SolveStats`] per stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadStepStats {
    pub stages: [SolveStats; 3],
}

impl RadStepStats {
    /// Total BiCGSTAB iterations across the three stages.
    pub fn total_iters(&self) -> usize {
        self.stages.iter().map(|s| s.iters).sum()
    }

    /// Whether every stage converged.
    pub fn all_converged(&self) -> bool {
        self.stages.iter().all(|s| s.converged)
    }
}

/// A radiation stage whose entire solver cascade (BiCGSTAB → restarted
/// GMRES → CG) failed.  The stepped field is left at its
/// beginning-of-step value, so the caller can retry — e.g. with a
/// smaller `dt` — without rebuilding state.
#[derive(Debug)]
pub struct RadStepError {
    /// Which of the three sweeps failed (0 = predictor).
    pub stage: usize,
    /// The profiler name of the failed stage.
    pub stage_name: &'static str,
    /// The per-solver attempt record of the cascade.
    pub error: SolveError,
}

impl std::fmt::Display for RadStepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "radiation stage {} ({}) failed: {}", self.stage, self.stage_name, self.error)
    }
}

impl std::error::Error for RadStepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Configuration of the radiation update.
#[derive(Debug, Clone, Copy)]
pub struct RadStepper {
    pub limiter: Limiter,
    pub opacity: OpacityModel,
    pub c_light: f64,
    pub precond: PrecondKind,
    pub solve: SolveOpts,
}

/// Scratch the radiation stepper reuses across timesteps: the Krylov
/// solvers' [`SolverWorkspace`] plus the stepper's own stage fields.
/// One per rank, owned by the simulation — after the first step at a
/// given tile shape, stepping performs no `TileVec` allocations outside
/// system assembly.
#[derive(Debug)]
pub struct RadWorkspace {
    pub solver: SolverWorkspace,
    e_stage: TileVec,
    lin_state: TileVec,
}

impl RadWorkspace {
    /// A workspace for an `n1 × n2` tile.
    pub fn new(n1: usize, n2: usize) -> Self {
        RadWorkspace {
            solver: SolverWorkspace::new(n1, n2),
            e_stage: TileVec::new(n1, n2),
            lin_state: TileVec::new(n1, n2),
        }
    }

    /// Reshape if the tile shape changed (allocation-free when it has
    /// not).
    pub fn ensure(&mut self, n1: usize, n2: usize) {
        self.solver.ensure(n1, n2);
        if (self.e_stage.n1(), self.e_stage.n2()) != (n1, n2) {
            self.e_stage = TileVec::new(n1, n2);
            self.lin_state = TileVec::new(n1, n2);
        }
    }
}

impl RadStepper {
    /// Advance `erad` by one timestep `dt`; `source` is the emission
    /// term.  The three BiCGSTAB call sites are recorded in the
    /// context's profiler scope (when one is attached), as the paper did
    /// with Arm MAP; all scratch comes from `wks`.
    ///
    /// Panics if a stage fails through the entire solver cascade; use
    /// [`RadStepper::try_step`] for a recoverable error instead.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &self,
        comm: &Comm,
        cx: &mut ExecCtx,
        cart: &CartComm,
        grid: &LocalGrid,
        matter: &MatterState,
        dt: f64,
        erad: &mut TileVec,
        source: &TileVec,
        wks: &mut RadWorkspace,
    ) -> RadStepStats {
        match self.try_step(comm, cx, cart, grid, matter, dt, erad, source, wks) {
            Ok(st) => st,
            Err(e) => panic!("unrecoverable radiation step: {e}"),
        }
    }

    /// [`RadStepper::step`], but a failed stage surfaces as a typed
    /// [`RadStepError`] instead of a panic.  Each stage runs the full
    /// fallback cascade (BiCGSTAB → restarted GMRES → CG); `erad` is
    /// only committed once all three stages have converged, so on `Err`
    /// the field still holds the beginning-of-step state and the caller
    /// may retry with different parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn try_step(
        &self,
        comm: &Comm,
        cx: &mut ExecCtx,
        cart: &CartComm,
        grid: &LocalGrid,
        matter: &MatterState,
        dt: f64,
        erad: &mut TileVec,
        source: &TileVec,
        wks: &mut RadWorkspace,
    ) -> Result<RadStepStats, RadStepError> {
        let (n1, n2) = (grid.n1, grid.n2);
        wks.ensure(n1, n2);
        let mut stats = Vec::with_capacity(3);

        // Three full-step sweeps re-linearized at the latest iterate.
        let stage_dt = [dt, dt, dt];
        let stage_name = ["bicgstab_predictor", "bicgstab_corrector", "bicgstab_coupling"];

        // The state the coefficients are evaluated at; starts at Eⁿ.
        // The right-hand side always carries Eⁿ (full steps from the
        // beginning-of-step data; only the linearization improves).
        wks.lin_state.copy_from(erad);

        for stage in 0..3 {
            let (mut op, rhs) = assemble_system(
                comm,
                cx,
                cart,
                grid,
                self.limiter,
                &self.opacity,
                matter,
                self.c_light,
                stage_dt[stage],
                &mut wks.lin_state,
                erad,
                source,
            );

            // Initial guess: the beginning-of-step field, for every
            // stage — V2D solves each of its three systems cold, which
            // is why the paper's Arm MAP analysis shows the three
            // BiCGSTAB call sites at nearly equal thirds of the runtime.
            wks.e_stage.copy_from(erad);

            cx.enter(stage_name[stage]);
            let e_stage = &mut wks.e_stage;
            let swks = &mut wks.solver;
            let st = match self.precond {
                PrecondKind::None => {
                    let mut m = Identity;
                    solve_cascade(comm, cx, &mut op, &mut m, &rhs, e_stage, swks, &self.solve)
                }
                PrecondKind::Jacobi => {
                    let mut m = Jacobi::new(&op);
                    solve_cascade(comm, cx, &mut op, &mut m, &rhs, e_stage, swks, &self.solve)
                }
                PrecondKind::BlockJacobi => {
                    let mut m = BlockJacobi::new(&op);
                    solve_cascade(comm, cx, &mut op, &mut m, &rhs, e_stage, swks, &self.solve)
                }
                PrecondKind::Spai => {
                    op.exchange_coeff_halos(comm, cx);
                    let mut m = Spai::new(&op, comm, cx);
                    solve_cascade(comm, cx, &mut op, &mut m, &rhs, e_stage, swks, &self.solve)
                }
            };
            cx.exit(stage_name[stage]);
            let st = match st {
                Ok(st) => st,
                Err(error) => {
                    return Err(RadStepError { stage, stage_name: stage_name[stage], error })
                }
            };
            stats.push(st);

            // Re-linearize the coefficients around the stage solution;
            // the rhs keeps carrying Eⁿ.
            wks.lin_state.copy_from(&wks.e_stage);
        }

        erad.copy_from(&wks.e_stage);
        Ok(RadStepStats { stages: [stats[0], stats[1], stats[2]] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Geometry, Grid2};
    use crate::sim::PrecondKind;
    use v2d_comm::{Spmd, TileMap};
    use v2d_linalg::NSPEC;
    use v2d_machine::CompilerProfile;
    use v2d_perf::Profiler;

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    fn stepper(precond: PrecondKind) -> RadStepper {
        RadStepper {
            limiter: Limiter::None,
            opacity: OpacityModel::Constant {
                kappa_a: [0.0, 0.0],
                kappa_s: [1.5, 1.5],
                kappa_x: 0.0,
            },
            c_light: 1.0,
            precond,
            solve: SolveOpts { tol: 1e-10, ..Default::default() },
        }
    }

    #[test]
    fn step_performs_three_solves_and_converges() {
        let (n1, n2) = (16, 12);
        let g = Grid2::new(n1, n2, (0.0, 1.0), (0.0, 0.75), Geometry::Cartesian);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(n1, n2);
            e.fill_with(|_, i1, i2| {
                let (x, y) = grid.center(i1, i2);
                (-((x - 0.5).powi(2) + (y - 0.375).powi(2)) / 0.01).exp()
            });
            let src = TileVec::new(n1, n2);
            let mut wks = RadWorkspace::new(n1, n2);
            let st = stepper(PrecondKind::BlockJacobi).step(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                &MatterState::Uniform,
                0.003,
                &mut e,
                &src,
                &mut wks,
            );
            assert!(st.all_converged());
            // The first solve always iterates; later stages may converge
            // instantly when the warm start already satisfies the
            // (nearly) identical system.
            assert!(st.stages[0].iters >= 1);
            assert!(st.total_iters() >= 2);
        });
    }

    #[test]
    fn diffusion_conserves_energy_without_absorption() {
        // Pure scattering (κ_a = 0), pulse far from the boundary:
        // total energy is conserved to solver tolerance.
        let (n1, n2) = (24, 24);
        let g = Grid2::new(n1, n2, (0.0, 1.0), (0.0, 1.0), Geometry::Cartesian);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(n1, n2);
            e.fill_with(|_, i1, i2| {
                let (x, y) = grid.center(i1, i2);
                (-((x - 0.5).powi(2) + (y - 0.5).powi(2)) / 0.005).exp()
            });
            let vol = g.volume(0, 0);
            let total0: f64 = e.interior_to_vec().iter().sum::<f64>() * vol;
            let src = TileVec::new(n1, n2);
            let mut wks = RadWorkspace::new(n1, n2);
            let s = stepper(PrecondKind::Jacobi);
            for _ in 0..5 {
                let st = s.step(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &cart,
                    &grid,
                    &MatterState::Uniform,
                    1e-3,
                    &mut e,
                    &src,
                    &mut wks,
                );
                assert!(st.all_converged());
            }
            let total1: f64 = e.interior_to_vec().iter().sum::<f64>() * vol;
            assert!(
                ((total1 - total0) / total0).abs() < 1e-6,
                "energy drifted: {total0} → {total1}"
            );
            // And the pulse actually spread: center decreased.
            let c = e.get(0, 12, 12);
            assert!(c < 1.0, "pulse did not diffuse (center {c})");
        });
    }

    #[test]
    fn absorption_removes_energy() {
        let (n1, n2) = (12, 12);
        let g = Grid2::new(n1, n2, (0.0, 1.0), (0.0, 1.0), Geometry::Cartesian);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(n1, n2);
            e.fill_interior(1.0);
            let src = TileVec::new(n1, n2);
            // Large scattering keeps D ≈ 0, so the only evolution is
            // local absorption and the backward-Euler decay is exact.
            let s = RadStepper {
                opacity: OpacityModel::Constant {
                    kappa_a: [0.5, 0.5],
                    kappa_s: [1e4, 1e4],
                    kappa_x: 0.0,
                },
                ..stepper(PrecondKind::Jacobi)
            };
            let before: f64 = e.interior_to_vec().iter().sum();
            let mut wks = RadWorkspace::new(n1, n2);
            s.step(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &cart,
                &grid,
                &MatterState::Uniform,
                0.1,
                &mut e,
                &src,
                &mut wks,
            );
            let after: f64 = e.interior_to_vec().iter().sum();
            assert!(after < before, "absorption did not remove energy");
            // Backward Euler of dE/dt = −κc E: E₁ = E₀/(1 + κ c dt).
            let expect = before / (1.0 + 0.5 * 0.1);
            assert!(((after - expect) / expect).abs() < 1e-3, "decay {after} far from {expect}");
        });
    }

    #[test]
    fn species_exchange_relaxes_toward_equilibrium() {
        let (n1, n2) = (10, 10);
        let g = Grid2::new(n1, n2, (0.0, 1.0), (0.0, 1.0), Geometry::Cartesian);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(n1, n2);
            // Species 0 hot, species 1 cold.
            e.fill_with(|s, _, _| if s == 0 { 2.0 } else { 0.5 });
            let src = TileVec::new(n1, n2);
            let s = RadStepper {
                opacity: OpacityModel::Constant {
                    kappa_a: [0.0, 0.0],
                    kappa_s: [1e4, 1e4],
                    kappa_x: 0.8,
                },
                ..stepper(PrecondKind::BlockJacobi)
            };
            let mut wks = RadWorkspace::new(n1, n2);
            for _ in 0..30 {
                s.step(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &cart,
                    &grid,
                    &MatterState::Uniform,
                    0.2,
                    &mut e,
                    &src,
                    &mut wks,
                );
            }
            let e0 = e.get(0, 5, 5);
            let e1 = e.get(1, 5, 5);
            assert!((e0 - e1).abs() < 0.05, "species did not equilibrate: {e0} vs {e1}");
            // Exchange conserves the species sum.
            assert!((e0 + e1 - 2.5).abs() < 1e-6, "exchange lost energy: {}", e0 + e1);
        });
    }

    #[test]
    fn profiler_sees_three_bicgstab_call_sites() {
        let (n1, n2) = (8, 8);
        let g = Grid2::new(n1, n2, (0.0, 1.0), (0.0, 1.0), Geometry::Cartesian);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let grid = LocalGrid::new(g, cart.tile());
            let mut e = TileVec::new(n1, n2);
            e.fill_interior(1.0);
            let src = TileVec::new(n1, n2);
            let mut prof = Profiler::new();
            let mut wks = RadWorkspace::new(n1, n2);
            stepper(PrecondKind::Jacobi).step(
                &ctx.comm,
                &mut ExecCtx::with_profiler(&mut ctx.sink, &mut prof),
                &cart,
                &grid,
                &MatterState::Uniform,
                0.01,
                &mut e,
                &src,
                &mut wks,
            );
            for name in ["bicgstab_predictor", "bicgstab_corrector", "bicgstab_coupling"] {
                assert_eq!(prof.routine(name).expect(name).calls, 1);
            }
        });
    }

    #[test]
    fn multirank_step_matches_single_rank() {
        let (n1, n2) = (16, 8);
        let g = Grid2::new(n1, n2, (0.0, 2.0), (0.0, 1.0), Geometry::Cartesian);
        let run = |np1: usize, np2: usize| {
            let map = TileMap::new(n1, n2, np1, np2);
            let outs = Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let t = cart.tile();
                let grid = LocalGrid::new(g, t);
                let mut e = TileVec::new(t.n1, t.n2);
                e.fill_with(|_, i1, i2| {
                    let (x, y) = grid.center(i1, i2);
                    (-((x - 1.0).powi(2) + (y - 0.5).powi(2)) / 0.02).exp()
                });
                let src = TileVec::new(t.n1, t.n2);
                let s = RadStepper {
                    limiter: Limiter::LevermorePomraning,
                    ..stepper(PrecondKind::Jacobi)
                };
                let mut wks = RadWorkspace::new(t.n1, t.n2);
                for _ in 0..3 {
                    s.step(
                        &ctx.comm,
                        &mut ExecCtx::new(&mut ctx.sink),
                        &cart,
                        &grid,
                        &MatterState::Uniform,
                        2e-3,
                        &mut e,
                        &src,
                        &mut wks,
                    );
                }
                let mut out = Vec::new();
                for s in 0..NSPEC {
                    for i2 in 0..t.n2 {
                        for i1 in 0..t.n1 {
                            out.push((
                                (s, t.i1_start + i1, t.i2_start + i2),
                                e.get(s, i1 as isize, i2 as isize),
                            ));
                        }
                    }
                }
                out
            });
            let mut all: Vec<_> = outs.into_iter().flatten().collect();
            all.sort_by_key(|&((s, a, b), _)| (s, b, a));
            all.into_iter().map(|(_, v)| v).collect::<Vec<f64>>()
        };
        let single = run(1, 1);
        let multi = run(2, 2);
        for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
            assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "field differs at {i}: {a} vs {b}");
        }
    }
}
