//! The 2-D structured grid and its orthogonal coordinate systems.
//!
//! V2D treats the x1 and x2 directions as always orthogonal and supports
//! several coordinate systems through the metric factors that enter the
//! finite-difference divergence: face "areas" and cell "volumes".  The
//! diffusion operator discretized in [`crate::rad`] is
//!
//! ```text
//! (∇·D∇E)_i ≈ (1/V_i) Σ_faces A_f · D_f · (E_nbr − E_i)/Δx
//! ```
//!
//! so supplying the right `A_f` and `V_i` per geometry is all it takes to
//! run the same solver in slab, cylindrical (r–z) or spherical-polar
//! (r–θ) coordinates.

/// Supported orthogonal coordinate systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// Planar (x, y).
    Cartesian,
    /// Cylindrical (r, z): x1 = r, x2 = z.
    CylindricalRZ,
    /// Spherical polar (r, θ): x1 = r, x2 = θ (polar angle).
    SphericalRTheta,
}

/// The global grid: extents, spacing, geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid2 {
    /// Zones in x1 / x2.
    pub n1: usize,
    pub n2: usize,
    /// Physical bounds.
    pub x1min: f64,
    pub x1max: f64,
    pub x2min: f64,
    pub x2max: f64,
    /// Coordinate system.
    pub geometry: Geometry,
}

impl Grid2 {
    /// A uniform grid.
    pub fn new(n1: usize, n2: usize, x1: (f64, f64), x2: (f64, f64), geometry: Geometry) -> Self {
        assert!(n1 >= 1 && n2 >= 1, "grid must have at least one zone per direction");
        assert!(x1.1 > x1.0 && x2.1 > x2.0, "grid bounds must be increasing");
        if geometry != Geometry::Cartesian {
            assert!(x1.0 >= 0.0, "radial coordinate cannot be negative");
        }
        Grid2 { n1, n2, x1min: x1.0, x1max: x1.1, x2min: x2.0, x2max: x2.1, geometry }
    }

    /// Zone width in x1.
    pub fn dx1(&self) -> f64 {
        (self.x1max - self.x1min) / self.n1 as f64
    }

    /// Zone width in x2.
    pub fn dx2(&self) -> f64 {
        (self.x2max - self.x2min) / self.n2 as f64
    }

    /// Center coordinate of zone `i1` in x1 (global index).
    pub fn x1c(&self, i1: usize) -> f64 {
        self.x1min + (i1 as f64 + 0.5) * self.dx1()
    }

    /// Center coordinate of zone `i2` in x2.
    pub fn x2c(&self, i2: usize) -> f64 {
        self.x2min + (i2 as f64 + 0.5) * self.dx2()
    }

    /// x1 coordinate of the *lower* face of zone `i1`.
    pub fn x1f(&self, i1: usize) -> f64 {
        self.x1min + i1 as f64 * self.dx1()
    }

    /// x2 coordinate of the lower face of zone `i2`.
    pub fn x2f(&self, i2: usize) -> f64 {
        self.x2min + i2 as f64 * self.dx2()
    }

    /// Area of the x1-face at `x1f(i1)` spanning zone `i2` (per unit
    /// depth for Cartesian, per radian in the symmetry angle otherwise).
    pub fn area1(&self, i1: usize, i2: usize) -> f64 {
        let r = self.x1f(i1);
        match self.geometry {
            Geometry::Cartesian => self.dx2(),
            Geometry::CylindricalRZ => r * self.dx2(),
            Geometry::SphericalRTheta => {
                let th0 = self.x2f(i2);
                let th1 = self.x2f(i2 + 1);
                r * r * (th0.cos() - th1.cos())
            }
        }
    }

    /// Area of the x2-face at `x2f(i2)` spanning zone `i1`.
    pub fn area2(&self, i1: usize, i2: usize) -> f64 {
        match self.geometry {
            Geometry::Cartesian => self.dx1(),
            Geometry::CylindricalRZ => {
                let r0 = self.x1f(i1);
                let r1 = self.x1f(i1 + 1);
                0.5 * (r1 * r1 - r0 * r0)
            }
            Geometry::SphericalRTheta => {
                let r0 = self.x1f(i1);
                let r1 = self.x1f(i1 + 1);
                let th = self.x2f(i2);
                0.5 * (r1 * r1 - r0 * r0) * th.sin()
            }
        }
    }

    /// Volume of zone `(i1, i2)` (same normalization as the areas).
    pub fn volume(&self, i1: usize, i2: usize) -> f64 {
        match self.geometry {
            Geometry::Cartesian => self.dx1() * self.dx2(),
            Geometry::CylindricalRZ => {
                let r0 = self.x1f(i1);
                let r1 = self.x1f(i1 + 1);
                0.5 * (r1 * r1 - r0 * r0) * self.dx2()
            }
            Geometry::SphericalRTheta => {
                let r0 = self.x1f(i1);
                let r1 = self.x1f(i1 + 1);
                let th0 = self.x2f(i2);
                let th1 = self.x2f(i2 + 1);
                (r1.powi(3) - r0.powi(3)) / 3.0 * (th0.cos() - th1.cos())
            }
        }
    }

    /// Distance between the centers of zones `i1` and `i1+1` (uniform).
    pub fn dx1_centers(&self) -> f64 {
        self.dx1()
    }

    /// Distance between x2 zone centers; in spherical coordinates this is
    /// an arc length `r·Δθ` evaluated at the zone-center radius.
    pub fn dx2_centers(&self, i1: usize) -> f64 {
        match self.geometry {
            Geometry::Cartesian | Geometry::CylindricalRZ => self.dx2(),
            Geometry::SphericalRTheta => self.x1c(i1) * self.dx2(),
        }
    }
}

/// A rank's view of the grid: the global grid plus this rank's tile
/// offsets (local index ↔ global coordinate conversions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalGrid {
    /// The global grid.
    pub global: Grid2,
    /// Global index of the first locally owned zone.
    pub i1_start: usize,
    pub i2_start: usize,
    /// Local extents.
    pub n1: usize,
    pub n2: usize,
}

impl LocalGrid {
    /// Build from the global grid and a tile.
    pub fn new(global: Grid2, tile: v2d_comm::Tile) -> Self {
        assert!(tile.i1_start + tile.n1 <= global.n1 && tile.i2_start + tile.n2 <= global.n2);
        LocalGrid {
            global,
            i1_start: tile.i1_start,
            i2_start: tile.i2_start,
            n1: tile.n1,
            n2: tile.n2,
        }
    }

    /// Global zone index of local `(i1, i2)`.
    pub fn to_global(&self, i1: usize, i2: usize) -> (usize, usize) {
        (self.i1_start + i1, self.i2_start + i2)
    }

    /// Center coordinates of local zone `(i1, i2)`.
    pub fn center(&self, i1: usize, i2: usize) -> (f64, f64) {
        let (g1, g2) = self.to_global(i1, i2);
        (self.global.x1c(g1), self.global.x2c(g2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_metrics_are_uniform() {
        let g = Grid2::new(200, 100, (0.0, 2.0), (0.0, 1.0), Geometry::Cartesian);
        assert!((g.dx1() - 0.01).abs() < 1e-15);
        assert!((g.dx2() - 0.01).abs() < 1e-15);
        assert!((g.volume(0, 0) - 1e-4).abs() < 1e-18);
        assert_eq!(g.area1(3, 7), g.area1(100, 50));
        assert!((g.x1c(0) - 0.005).abs() < 1e-15);
    }

    #[test]
    fn cylindrical_volumes_sum_to_annulus() {
        let g = Grid2::new(50, 10, (0.0, 1.0), (0.0, 2.0), Geometry::CylindricalRZ);
        let total: f64 = (0..50).map(|i| (0..10).map(|j| g.volume(i, j)).sum::<f64>()).sum();
        // Per radian: volume = ½ r² · height = ½ · 1 · 2 = 1.
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn spherical_volumes_sum_to_shell() {
        let g =
            Grid2::new(40, 20, (0.5, 1.0), (0.0, std::f64::consts::PI), Geometry::SphericalRTheta);
        let total: f64 = (0..40).map(|i| (0..20).map(|j| g.volume(i, j)).sum::<f64>()).sum();
        // Per radian in φ: (r₁³−r₀³)/3 · (cos0 − cosπ) = (0.875)/3·2
        let expect = (1.0f64.powi(3) - 0.5f64.powi(3)) / 3.0 * 2.0;
        assert!((total - expect).abs() < 1e-12, "total {total} vs {expect}");
    }

    #[test]
    fn divergence_identity_holds_per_zone() {
        // Gauss: for each zone, volume ≈ what the faces enclose.  In
        // cylindrical coordinates, A1(i+1) − A1(i) relates to the volume
        // by dV = dx2 · (r dr) — check the discrete consistency that the
        // diffusion assembly relies on: A2 · dx2 == V for the x2 pair.
        let g = Grid2::new(30, 15, (0.1, 2.0), (0.0, 1.0), Geometry::CylindricalRZ);
        for i1 in 0..30 {
            for i2 in 0..15 {
                let v = g.volume(i1, i2);
                assert!((g.area2(i1, i2) * g.dx2() - v).abs() < 1e-12 * v.max(1e-30));
            }
        }
    }

    #[test]
    fn local_grid_maps_coordinates() {
        let g = Grid2::new(16, 8, (0.0, 16.0), (0.0, 8.0), Geometry::Cartesian);
        let lg = LocalGrid::new(g, v2d_comm::Tile { i1_start: 8, n1: 8, i2_start: 4, n2: 4 });
        assert_eq!(lg.to_global(0, 0), (8, 4));
        let (x, y) = lg.center(0, 0);
        assert!((x - 8.5).abs() < 1e-15 && (y - 4.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "radial coordinate")]
    fn negative_radius_rejected() {
        let _ = Grid2::new(4, 4, (-1.0, 1.0), (0.0, 1.0), Geometry::CylindricalRZ);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn inverted_bounds_rejected() {
        let _ = Grid2::new(4, 4, (1.0, 0.0), (0.0, 1.0), Geometry::Cartesian);
    }
}
