//! Checkpoint / restart through the h5lite substrate.
//!
//! V2D writes HDF5 checkpoints through MPI-IO; here each rank
//! contributes its tile through an `allgatherv` (so every rank holds the
//! assembled file — rank 0 is the one that typically persists it) and
//! the global datasets are assembled with `v2d_io::gather_global`.  The
//! file layout:
//!
//! ```text
//! /              @time, @istep, @n1, @n2
//! /radiation/erad        f64 [2, n2, n1]
//! /hydro/{rho,m1,m2,etot} f64 [n2, n1]   (when hydro is enabled)
//! ```

use std::path::{Path, PathBuf};

use v2d_comm::{coll_site, Comm, CommError};
use v2d_io::parallel::TileData;
use v2d_io::{Dataset, File, H5Error, Value};
use v2d_linalg::NSPEC;
use v2d_machine::{KernelClass, KernelShape, MultiCostSink};

use crate::sim::V2dSim;

/// Why a checkpoint could not be restored (or persisted).
#[derive(Debug)]
pub enum CheckpointError {
    /// A required attribute is absent.
    MissingAttr { name: String },
    /// An attribute exists with the wrong type.
    BadAttr { name: String, expected: &'static str },
    /// A required dataset is absent.
    MissingDataset { name: String },
    /// A dataset exists with the wrong element type.
    BadDataset { name: String, expected: &'static str },
    /// The checkpoint was written for a different global grid.
    GridMismatch { file: (usize, usize), sim: (usize, usize) },
    /// The container layer rejected the file (I/O, corruption, version).
    Io(H5Error),
    /// No file in the store's directory decoded cleanly.
    NoUsableCheckpoint { dir: String, tried: usize },
    /// The checkpoint allgather failed (lockstep mismatch, timeout,
    /// peer death) — no assembled file exists on any rank.
    Comm(CommError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::MissingAttr { name } => {
                write!(f, "checkpoint missing attribute `{name}`")
            }
            CheckpointError::BadAttr { name, expected } => {
                write!(f, "checkpoint attribute `{name}` is not {expected}")
            }
            CheckpointError::MissingDataset { name } => {
                write!(f, "checkpoint missing dataset `{name}`")
            }
            CheckpointError::BadDataset { name, expected } => {
                write!(f, "checkpoint dataset `{name}` is not {expected}")
            }
            CheckpointError::GridMismatch { file, sim } => write!(
                f,
                "checkpoint grid {}x{} does not match simulation grid {}x{}",
                file.0, file.1, sim.0, sim.1
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint container error: {e}"),
            CheckpointError::NoUsableCheckpoint { dir, tried } => {
                write!(f, "no usable checkpoint in {dir} ({tried} file(s) tried)")
            }
            CheckpointError::Comm(e) => write!(f, "checkpoint gather failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<H5Error> for CheckpointError {
    fn from(e: H5Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CommError> for CheckpointError {
    fn from(e: CommError) -> Self {
        CheckpointError::Comm(e)
    }
}

pub(crate) fn attr_i64(file: &File, name: &str) -> Result<i64, CheckpointError> {
    match file.attr(name) {
        Ok(Value::I64(v)) => Ok(*v),
        Ok(_) => Err(CheckpointError::BadAttr { name: name.into(), expected: "an integer" }),
        Err(_) => Err(CheckpointError::MissingAttr { name: name.into() }),
    }
}

fn attr_f64(file: &File, name: &str) -> Result<f64, CheckpointError> {
    match file.attr(name) {
        Ok(Value::F64(v)) => Ok(*v),
        Ok(_) => Err(CheckpointError::BadAttr { name: name.into(), expected: "a float" }),
        Err(_) => Err(CheckpointError::MissingAttr { name: name.into() }),
    }
}

fn dataset_f64<'f>(file: &'f File, name: &str) -> Result<&'f [f64], CheckpointError> {
    match file.dataset(name) {
        Ok(ds) => {
            ds.as_f64().ok_or(CheckpointError::BadDataset { name: name.into(), expected: "f64" })
        }
        Err(_) => Err(CheckpointError::MissingDataset { name: name.into() }),
    }
}

/// Gather one distributed field (given per-rank `values` of the local
/// tile, species-major) into a global row-major array on every rank.
fn gather_field(
    comm: &Comm,
    sink: &mut MultiCostSink,
    sim: &V2dSim,
    nspec: usize,
    values: Vec<f64>,
) -> Result<Vec<f64>, CommError> {
    let g = sim.grid();
    // Header: tile extents, then payload.
    let mut msg = vec![g.i1_start as f64, g.n1 as f64, g.i2_start as f64, g.n2 as f64];
    sink.charge(&KernelShape::streaming(KernelClass::Pack, values.len(), 0, 1, 1, 0));
    msg.extend_from_slice(&values);
    let all = comm.try_allgatherv(sink, coll_site::CHECKPOINT_GATHER, &msg)?;

    // Decode rank contributions in order.
    let mut tiles = Vec::with_capacity(comm.n_ranks());
    let mut at = 0;
    while at < all.len() {
        let i1_start = all[at] as usize;
        let n1 = all[at + 1] as usize;
        let i2_start = all[at + 2] as usize;
        let n2 = all[at + 3] as usize;
        let len = nspec * n1 * n2;
        tiles.push(TileData {
            i1_start,
            n1,
            i2_start,
            n2,
            data: all[at + 4..at + 4 + len].to_vec(),
        });
        at += 4 + len;
    }
    Ok(v2d_io::gather_global(g.global.n1, g.global.n2, nspec, &tiles))
}

/// Assemble a checkpoint of `sim` (every rank returns the identical
/// file; persist it from rank 0 with [`v2d_io::File::save`]).
///
/// Fails with [`CheckpointError::Comm`] if the gather collective fails
/// (lockstep mismatch, deadline expiry under fault injection); no file
/// is produced on any rank in that case.
pub fn write_checkpoint(
    comm: &Comm,
    sink: &mut MultiCostSink,
    sim: &V2dSim,
) -> Result<File, CheckpointError> {
    let g = sim.grid();
    let (gn1, gn2) = (g.global.n1, g.global.n2);
    let mut f = File::new();
    f.set_attr("time", Value::F64(sim.time()));
    f.set_attr("istep", Value::I64(sim.istep() as i64));
    f.set_attr("n1", Value::I64(gn1 as i64));
    f.set_attr("n2", Value::I64(gn2 as i64));
    f.set_attr("code", Value::Str("V2D-rust".into()));

    let erad = gather_field(comm, sink, sim, NSPEC, sim.erad().interior_to_vec())?;
    f.write_dataset("radiation/erad", Dataset::f64(vec![NSPEC, gn2, gn1], erad));

    if let Some(h) = sim.hydro() {
        for (name, field) in [("rho", &h.rho), ("m1", &h.m1), ("m2", &h.m2), ("etot", &h.etot)] {
            let global = gather_field(comm, sink, sim, 1, field.interior_to_vec())?;
            f.write_dataset(&format!("hydro/{name}"), Dataset::f64(vec![gn2, gn1], global));
        }
    }
    Ok(f)
}

/// Restore `sim`'s rank-local state from a checkpoint file.
///
/// Every defect — missing or mistyped attribute/dataset, grid mismatch —
/// is a typed [`CheckpointError`] naming the offending member, and the
/// simulation is left untouched on any error (all validation happens
/// before the first field write).
pub fn restore_checkpoint(sim: &mut V2dSim, file: &File) -> Result<(), CheckpointError> {
    let g = *sim.grid();
    let (gn1, gn2) = (g.global.n1, g.global.n2);
    let n1_ck = attr_i64(file, "n1")? as usize;
    let n2_ck = attr_i64(file, "n2")? as usize;
    if (n1_ck, n2_ck) != (gn1, gn2) {
        return Err(CheckpointError::GridMismatch { file: (n1_ck, n2_ck), sim: (gn1, gn2) });
    }

    let time = attr_f64(file, "time")?;
    let istep = attr_i64(file, "istep")? as usize;

    // Validate every dataset (presence, type, length) before mutating
    // anything, so a half-valid file cannot leave a half-restored sim.
    let erad = dataset_f64(file, "radiation/erad")?;
    if erad.len() != NSPEC * gn1 * gn2 {
        return Err(CheckpointError::BadDataset {
            name: "radiation/erad".into(),
            expected: "an nspec * n2 * n1 array",
        });
    }
    let erad = erad.to_vec();
    let mut hydro_fields = Vec::new();
    if sim.hydro().is_some() {
        for name in ["rho", "m1", "m2", "etot"] {
            let data = dataset_f64(file, &format!("hydro/{name}"))?;
            if data.len() != gn1 * gn2 {
                return Err(CheckpointError::BadDataset {
                    name: format!("hydro/{name}"),
                    expected: "an n2 * n1 array",
                });
            }
            hydro_fields.push((name, data.to_vec()));
        }
    }

    sim.set_time(time, istep);
    {
        let (i1s, i2s) = (g.i1_start, g.i2_start);
        sim.erad_mut().fill_with(|s, i1, i2| erad[s * gn1 * gn2 + (i2s + i2) * gn1 + (i1s + i1)]);
    }

    if let Some(h) = sim.hydro_mut() {
        let (i1s, i2s) = (g.i1_start, g.i2_start);
        let (ln1, ln2) = (g.n1, g.n2);
        for (name, data) in hydro_fields {
            let field = match name {
                "rho" => &mut h.rho,
                "m1" => &mut h.m1,
                "m2" => &mut h.m2,
                _ => &mut h.etot,
            };
            for i2 in 0..ln2 {
                for i1 in 0..ln1 {
                    field.set(i1 as isize, i2 as isize, data[(i2s + i2) * gn1 + (i1s + i1)]);
                }
            }
        }
    }
    Ok(())
}

/// A rotating on-disk checkpoint store with crash-safe writes and
/// corruption-tolerant restore.
///
/// `save` writes `ck_<istep>.h5l` atomically (tmp + rename, via
/// [`File::save`]) and prunes the oldest files beyond `keep`;
/// `load_latest` walks the directory newest-first and returns the first
/// checkpoint that decodes cleanly, skipping truncated, corrupt, or
/// wrong-version files and reporting each skip.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on demand), keeping at most
    /// `keep` checkpoints on disk.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io(H5Error::Io(e)))?;
        Ok(CheckpointStore { dir, keep: keep.max(1) })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Adjust the retention policy: keep at most `k` checkpoints
    /// (clamped to ≥ 1).  Pruning runs after each successful
    /// [`CheckpointStore::save`] and never deletes the newest file.
    pub fn keep_last(mut self, k: usize) -> Self {
        self.keep = k.max(1);
        self
    }

    /// The current retention bound.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Delete every checkpoint file in the store's directory (e.g. when
    /// a supervised run starts fresh and stale checkpoints from an
    /// earlier run must not be rolled back into).  Best-effort.
    pub fn clear(&mut self) {
        for path in self.checkpoint_files() {
            let _ = std::fs::remove_file(path);
        }
    }

    fn checkpoint_files(&self) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ck_") && n.ends_with(".h5l"))
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        // Zero-padded step numbers make lexicographic == chronological.
        files.sort();
        files
    }

    /// Persist `file` as the checkpoint for step `istep`, then prune.
    pub fn save(&mut self, file: &File, istep: usize) -> Result<PathBuf, CheckpointError> {
        let path = self.dir.join(format!("ck_{istep:08}.h5l"));
        file.save(&path)?;
        let files = self.checkpoint_files();
        if files.len() > self.keep {
            for old in &files[..files.len() - self.keep] {
                // Pruning is best-effort: a stuck old file must not fail
                // the save that just succeeded.
                let _ = std::fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Load the newest checkpoint that decodes cleanly.  Returns the
    /// file, its path, and one note per skipped (corrupt, truncated, or
    /// wrong-version) candidate, newest first.
    pub fn load_latest(&self) -> Result<(File, PathBuf, Vec<String>), CheckpointError> {
        let files = self.checkpoint_files();
        let mut skipped = Vec::new();
        for path in files.iter().rev() {
            match File::open(path) {
                Ok(f) => return Ok((f, path.clone(), skipped)),
                Err(e) => {
                    let name = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("<non-utf8>")
                        .to_string();
                    skipped.push(format!("{name}: {}", e.root_cause()));
                }
            }
        }
        Err(CheckpointError::NoUsableCheckpoint {
            dir: self.dir.display().to_string(),
            tried: skipped.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::GaussianPulse;
    use crate::sim::V2dSim;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    #[test]
    fn checkpoint_roundtrip_restores_exact_state() {
        let (n1, n2) = (16, 12);
        let cfg = GaussianPulse::linear_config(n1, n2, 10);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let map = TileMap::new(n1, n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            for _ in 0..2 {
                sim.step(&ctx.comm, &mut ctx.sink);
            }
            let ck = write_checkpoint(&ctx.comm, &mut ctx.sink, &sim).expect("checkpoint gather");
            // Continue the original.
            for _ in 0..2 {
                sim.step(&ctx.comm, &mut ctx.sink);
            }
            let reference = sim.erad().interior_to_vec();

            // Restore into a fresh sim and continue identically.
            let mut sim2 = V2dSim::new(cfg, &ctx.comm, map);
            restore_checkpoint(&mut sim2, &ck).expect("valid checkpoint");
            assert_eq!(sim2.istep(), 2);
            for _ in 0..2 {
                sim2.step(&ctx.comm, &mut ctx.sink);
            }
            let restored = sim2.erad().interior_to_vec();
            assert_eq!(reference, restored, "restart diverged from original run");
        });
    }

    #[test]
    fn checkpoint_survives_disk_and_is_topology_independent() {
        let (n1, n2) = (12, 8);
        let cfg = GaussianPulse::linear_config(n1, n2, 10);
        let make = |np1: usize, np2: usize| {
            Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let map = TileMap::new(n1, n2, np1, np2);
                let mut sim = V2dSim::new(cfg, &ctx.comm, map);
                GaussianPulse::standard().init(&mut sim);
                sim.step(&ctx.comm, &mut ctx.sink);
                write_checkpoint(&ctx.comm, &mut ctx.sink, &sim).expect("checkpoint gather")
            })
        };
        let single = make(1, 1);
        let multi = make(2, 2);
        // Every rank assembled the same file.
        for f in &multi {
            assert_eq!(f.attr("istep").unwrap(), single[0].attr("istep").unwrap());
            let a = f.dataset("radiation/erad").unwrap().as_f64().unwrap();
            let b = single[0].dataset("radiation/erad").unwrap().as_f64().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "decomposed checkpoint differs from single-rank: {x} vs {y}"
                );
            }
        }
        // Disk roundtrip through the h5lite container.
        let dir = std::env::temp_dir().join("v2d_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.h5l");
        single[0].save(&path).unwrap();
        let loaded = v2d_io::File::open(&path).unwrap();
        assert_eq!(&loaded, &single[0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_retention_keeps_last_k_and_clear_empties() {
        let (n1, n2) = (8, 6);
        let cfg = GaussianPulse::linear_config(n1, n2, 10);
        let ck = Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let map = TileMap::new(n1, n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            sim.step(&ctx.comm, &mut ctx.sink);
            write_checkpoint(&ctx.comm, &mut ctx.sink, &sim).expect("checkpoint gather")
        });
        let dir = std::env::temp_dir().join(format!("v2d_ck_retention_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::new(&dir, 10).unwrap().keep_last(3);
        assert_eq!(store.keep(), 3);
        for istep in 1..=6 {
            store.save(&ck[0], istep).unwrap();
        }
        let left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        let mut left_sorted = left.clone();
        left_sorted.sort();
        assert_eq!(
            left_sorted,
            vec!["ck_00000004.h5l", "ck_00000005.h5l", "ck_00000006.h5l"],
            "retention must keep exactly the newest 3"
        );
        let (_, newest, _) = store.load_latest().unwrap();
        assert!(newest.ends_with("ck_00000006.h5l"));
        store.clear();
        assert!(store.load_latest().is_err(), "cleared store has nothing to load");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
