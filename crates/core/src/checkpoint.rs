//! Checkpoint / restart through the h5lite substrate.
//!
//! V2D writes HDF5 checkpoints through MPI-IO; here each rank
//! contributes its tile through an `allgatherv` (so every rank holds the
//! assembled file — rank 0 is the one that typically persists it) and
//! the global datasets are assembled with `v2d_io::gather_global`.  The
//! file layout:
//!
//! ```text
//! /              @time, @istep, @n1, @n2
//! /radiation/erad        f64 [2, n2, n1]
//! /hydro/{rho,m1,m2,etot} f64 [n2, n1]   (when hydro is enabled)
//! ```

use v2d_comm::Comm;
use v2d_io::parallel::TileData;
use v2d_io::{Dataset, File, Value};
use v2d_linalg::NSPEC;
use v2d_machine::{KernelClass, KernelShape, MultiCostSink};

use crate::sim::V2dSim;

/// Gather one distributed field (given per-rank `values` of the local
/// tile, species-major) into a global row-major array on every rank.
fn gather_field(
    comm: &Comm,
    sink: &mut MultiCostSink,
    sim: &V2dSim,
    nspec: usize,
    values: Vec<f64>,
) -> Vec<f64> {
    let g = sim.grid();
    // Header: tile extents, then payload.
    let mut msg = vec![g.i1_start as f64, g.n1 as f64, g.i2_start as f64, g.n2 as f64];
    sink.charge(&KernelShape::streaming(KernelClass::Pack, values.len(), 0, 1, 1, 0));
    msg.extend_from_slice(&values);
    let all = comm.allgatherv(sink, &msg);

    // Decode rank contributions in order.
    let mut tiles = Vec::with_capacity(comm.n_ranks());
    let mut at = 0;
    while at < all.len() {
        let i1_start = all[at] as usize;
        let n1 = all[at + 1] as usize;
        let i2_start = all[at + 2] as usize;
        let n2 = all[at + 3] as usize;
        let len = nspec * n1 * n2;
        tiles.push(TileData {
            i1_start,
            n1,
            i2_start,
            n2,
            data: all[at + 4..at + 4 + len].to_vec(),
        });
        at += 4 + len;
    }
    v2d_io::gather_global(g.global.n1, g.global.n2, nspec, &tiles)
}

/// Assemble a checkpoint of `sim` (every rank returns the identical
/// file; persist it from rank 0 with [`v2d_io::File::save`]).
pub fn write_checkpoint(comm: &Comm, sink: &mut MultiCostSink, sim: &V2dSim) -> File {
    let g = sim.grid();
    let (gn1, gn2) = (g.global.n1, g.global.n2);
    let mut f = File::new();
    f.set_attr("time", Value::F64(sim.time()));
    f.set_attr("istep", Value::I64(sim.istep() as i64));
    f.set_attr("n1", Value::I64(gn1 as i64));
    f.set_attr("n2", Value::I64(gn2 as i64));
    f.set_attr("code", Value::Str("V2D-rust".into()));

    let erad = gather_field(comm, sink, sim, NSPEC, sim.erad().interior_to_vec());
    f.write_dataset("radiation/erad", Dataset::f64(vec![NSPEC, gn2, gn1], erad));

    if let Some(h) = sim.hydro() {
        for (name, field) in [("rho", &h.rho), ("m1", &h.m1), ("m2", &h.m2), ("etot", &h.etot)] {
            let global = gather_field(comm, sink, sim, 1, field.interior_to_vec());
            f.write_dataset(&format!("hydro/{name}"), Dataset::f64(vec![gn2, gn1], global));
        }
    }
    f
}

/// Restore `sim`'s rank-local state from a checkpoint file.
///
/// # Panics
/// If the checkpoint's grid does not match the simulation's.
pub fn restore_checkpoint(sim: &mut V2dSim, file: &File) {
    let g = *sim.grid();
    let (gn1, gn2) = (g.global.n1, g.global.n2);
    let n1_ck = match file.attr("n1").expect("checkpoint missing n1") {
        Value::I64(v) => *v as usize,
        other => panic!("bad n1 attribute: {other:?}"),
    };
    let n2_ck = match file.attr("n2").expect("checkpoint missing n2") {
        Value::I64(v) => *v as usize,
        other => panic!("bad n2 attribute: {other:?}"),
    };
    assert_eq!((n1_ck, n2_ck), (gn1, gn2), "checkpoint grid mismatch");

    let time = match file.attr("time").expect("missing time") {
        Value::F64(v) => *v,
        other => panic!("bad time attribute: {other:?}"),
    };
    let istep = match file.attr("istep").expect("missing istep") {
        Value::I64(v) => *v as usize,
        other => panic!("bad istep attribute: {other:?}"),
    };
    sim.set_time(time, istep);

    let erad = file
        .dataset("radiation/erad")
        .expect("missing radiation/erad")
        .as_f64()
        .expect("erad must be f64")
        .to_vec();
    {
        let (i1s, i2s) = (g.i1_start, g.i2_start);
        sim.erad_mut().fill_with(|s, i1, i2| erad[s * gn1 * gn2 + (i2s + i2) * gn1 + (i1s + i1)]);
    }

    if sim.hydro().is_some() {
        let (i1s, i2s) = (g.i1_start, g.i2_start);
        let (ln1, ln2) = (g.n1, g.n2);
        for name in ["rho", "m1", "m2", "etot"] {
            let data = file
                .dataset(&format!("hydro/{name}"))
                .unwrap_or_else(|_| panic!("checkpoint missing hydro/{name}"))
                .as_f64()
                .expect("hydro fields must be f64")
                .to_vec();
            let h = sim.hydro_mut().expect("hydro enabled");
            let field = match name {
                "rho" => &mut h.rho,
                "m1" => &mut h.m1,
                "m2" => &mut h.m2,
                _ => &mut h.etot,
            };
            for i2 in 0..ln2 {
                for i1 in 0..ln1 {
                    field.set(i1 as isize, i2 as isize, data[(i2s + i2) * gn1 + (i1s + i1)]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::GaussianPulse;
    use crate::sim::V2dSim;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    #[test]
    fn checkpoint_roundtrip_restores_exact_state() {
        let (n1, n2) = (16, 12);
        let cfg = GaussianPulse::linear_config(n1, n2, 10);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let map = TileMap::new(n1, n2, 1, 1);
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            for _ in 0..2 {
                sim.step(&ctx.comm, &mut ctx.sink);
            }
            let ck = write_checkpoint(&ctx.comm, &mut ctx.sink, &sim);
            // Continue the original.
            for _ in 0..2 {
                sim.step(&ctx.comm, &mut ctx.sink);
            }
            let reference = sim.erad().interior_to_vec();

            // Restore into a fresh sim and continue identically.
            let mut sim2 = V2dSim::new(cfg, &ctx.comm, map);
            restore_checkpoint(&mut sim2, &ck);
            assert_eq!(sim2.istep(), 2);
            for _ in 0..2 {
                sim2.step(&ctx.comm, &mut ctx.sink);
            }
            let restored = sim2.erad().interior_to_vec();
            assert_eq!(reference, restored, "restart diverged from original run");
        });
    }

    #[test]
    fn checkpoint_survives_disk_and_is_topology_independent() {
        let (n1, n2) = (12, 8);
        let cfg = GaussianPulse::linear_config(n1, n2, 10);
        let make = |np1: usize, np2: usize| {
            Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let map = TileMap::new(n1, n2, np1, np2);
                let mut sim = V2dSim::new(cfg, &ctx.comm, map);
                GaussianPulse::standard().init(&mut sim);
                sim.step(&ctx.comm, &mut ctx.sink);
                write_checkpoint(&ctx.comm, &mut ctx.sink, &sim)
            })
        };
        let single = make(1, 1);
        let multi = make(2, 2);
        // Every rank assembled the same file.
        for f in &multi {
            assert_eq!(f.attr("istep").unwrap(), single[0].attr("istep").unwrap());
            let a = f.dataset("radiation/erad").unwrap().as_f64().unwrap();
            let b = single[0].dataset("radiation/erad").unwrap().as_f64().unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "decomposed checkpoint differs from single-rank: {x} vs {y}"
                );
            }
        }
        // Disk roundtrip through the h5lite container.
        let dir = std::env::temp_dir().join("v2d_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.h5l");
        single[0].save(&path).unwrap();
        let loaded = v2d_io::File::open(&path).unwrap();
        assert_eq!(&loaded, &single[0]);
        std::fs::remove_file(&path).unwrap();
    }
}
