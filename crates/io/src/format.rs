//! The h5lite container format: groups, datasets, attributes.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Format errors.
#[derive(Debug)]
pub enum H5Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic, version, truncation, or structural garbage.
    Format(String),
    /// Checksum mismatch: the file is corrupt.
    Corrupt { expected: u64, found: u64 },
    /// A path component does not exist.
    NotFound(String),
    /// An error annotated with the on-disk file it occurred on.
    AtPath { path: String, source: Box<H5Error> },
}

impl H5Error {
    /// Annotate this error with the file path it came from.
    pub fn at(self, path: &Path) -> H5Error {
        H5Error::AtPath { path: path.display().to_string(), source: Box::new(self) }
    }

    /// The root cause, unwrapping any path annotation.
    pub fn root_cause(&self) -> &H5Error {
        match self {
            H5Error::AtPath { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::Io(e) => write!(f, "i/o error: {e}"),
            H5Error::Format(m) => write!(f, "format error: {m}"),
            H5Error::Corrupt { expected, found } => {
                write!(f, "checksum mismatch: expected {expected:#x}, found {found:#x}")
            }
            H5Error::NotFound(p) => write!(f, "path not found: {p}"),
            H5Error::AtPath { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for H5Error {}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

type Result<T> = std::result::Result<T, H5Error>;

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    F64(f64),
    I64(i64),
    Str(String),
}

/// A typed, shaped array.
#[derive(Debug, Clone, PartialEq)]
pub enum Dataset {
    /// Row-major f64 array.
    F64 { shape: Vec<usize>, data: Vec<f64> },
    /// Row-major i64 array.
    I64 { shape: Vec<usize>, data: Vec<i64> },
}

impl Dataset {
    /// Build an f64 dataset, checking shape/data consistency.
    pub fn f64(shape: Vec<usize>, data: Vec<f64>) -> Self {
        assert_eq!(shape.iter().product::<usize>(), data.len(), "shape/data mismatch");
        Dataset::F64 { shape, data }
    }

    /// Build an i64 dataset.
    pub fn i64(shape: Vec<usize>, data: Vec<i64>) -> Self {
        assert_eq!(shape.iter().product::<usize>(), data.len(), "shape/data mismatch");
        Dataset::I64 { shape, data }
    }

    /// The dataset's shape.
    pub fn shape(&self) -> &[usize] {
        match self {
            Dataset::F64 { shape, .. } | Dataset::I64 { shape, .. } => shape,
        }
    }

    /// The f64 payload, if this is an f64 dataset.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Dataset::F64 { data, .. } => Some(data),
            Dataset::I64 { .. } => None,
        }
    }

    /// The i64 payload, if this is an i64 dataset.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Dataset::I64 { data, .. } => Some(data),
            Dataset::F64 { .. } => None,
        }
    }
}

/// A group: attributes, datasets, subgroups — all name-ordered for
/// deterministic encoding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    pub attrs: BTreeMap<String, Value>,
    pub datasets: BTreeMap<String, Dataset>,
    pub groups: BTreeMap<String, Group>,
}

impl Group {
    fn get_group(&self, name: &str) -> Result<&Group> {
        self.groups.get(name).ok_or_else(|| H5Error::NotFound(name.to_string()))
    }

    fn get_or_create_group(&mut self, name: &str) -> &mut Group {
        self.groups.entry(name.to_string()).or_default()
    }
}

/// An in-memory h5lite file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct File {
    /// The root group.
    pub root: Group,
}

const MAGIC: &[u8; 4] = b"H5LT";
/// Current container version.  v2 adds a CRC-32 after every dataset so
/// corruption is pinned to the dataset it hit; v1 files (whole-payload
/// checksum only) are still readable.
const VERSION: u16 = 2;
const MIN_VERSION: u16 = 1;

impl File {
    /// An empty file.
    pub fn new() -> Self {
        File::default()
    }

    fn split_path(path: &str) -> (Vec<&str>, &str) {
        let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let leaf = parts.pop().unwrap_or("");
        (parts, leaf)
    }

    /// Create (or reuse) the group at `path` ("a/b/c").
    pub fn create_group(&mut self, path: &str) -> &mut Group {
        let mut g = &mut self.root;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            g = g.get_or_create_group(part);
        }
        g
    }

    /// Write (or overwrite) a dataset at `path`, creating intermediate
    /// groups.
    pub fn write_dataset(&mut self, path: &str, ds: Dataset) {
        let (dirs, leaf) = Self::split_path(path);
        assert!(!leaf.is_empty(), "dataset path must have a name");
        let mut g = &mut self.root;
        for d in dirs {
            g = g.get_or_create_group(d);
        }
        g.datasets.insert(leaf.to_string(), ds);
    }

    /// Set an attribute at `path` (the leaf is the attribute name; the
    /// prefix is the owning group, created on demand).
    pub fn set_attr(&mut self, path: &str, v: Value) {
        let (dirs, leaf) = Self::split_path(path);
        assert!(!leaf.is_empty(), "attribute path must have a name");
        let mut g = &mut self.root;
        for d in dirs {
            g = g.get_or_create_group(d);
        }
        g.attrs.insert(leaf.to_string(), v);
    }

    /// Look up a dataset by path.
    pub fn dataset(&self, path: &str) -> Result<&Dataset> {
        let (dirs, leaf) = Self::split_path(path);
        let mut g = &self.root;
        for d in dirs {
            g = g.get_group(d)?;
        }
        g.datasets.get(leaf).ok_or_else(|| H5Error::NotFound(path.to_string()))
    }

    /// Look up an attribute by path.
    pub fn attr(&self, path: &str) -> Result<&Value> {
        let (dirs, leaf) = Self::split_path(path);
        let mut g = &self.root;
        for d in dirs {
            g = g.get_group(d)?;
        }
        g.attrs.get(leaf).ok_or_else(|| H5Error::NotFound(path.to_string()))
    }

    /// Look up a group by path.
    pub fn group(&self, path: &str) -> Result<&Group> {
        let mut g = &self.root;
        for d in path.split('/').filter(|p| !p.is_empty()) {
            g = g.get_group(d)?;
        }
        Ok(g)
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_group(&self.root, &mut payload);
        let mut out = Vec::with_capacity(payload.len() + 22);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserialize from bytes, validating magic, version, length, and
    /// checksum (whole-payload always; per-dataset CRC-32 on v2 files).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 22 {
            return Err(H5Error::Format("file shorter than header".into()));
        }
        if &bytes[0..4] != MAGIC {
            return Err(H5Error::Format("bad magic".into()));
        }
        let version = u16::from_le_bytes(sized(&bytes[4..6])?);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(H5Error::Format(format!(
                "unsupported version {version} (this build reads {MIN_VERSION}..={VERSION})"
            )));
        }
        let plen = u64::from_le_bytes(sized(&bytes[6..14])?) as usize;
        if bytes.len() != 14 + plen + 8 {
            return Err(H5Error::Format(format!(
                "length mismatch: header says {plen} payload bytes, file has {}",
                bytes.len().saturating_sub(22)
            )));
        }
        let payload = &bytes[14..14 + plen];
        let found = u64::from_le_bytes(sized(&bytes[14 + plen..])?);
        let expected = fnv1a64(payload);
        if found != expected {
            return Err(H5Error::Corrupt { expected, found });
        }
        let mut cur = Cursor { b: payload, at: 0, version };
        let root = decode_group(&mut cur)?;
        if cur.at != payload.len() {
            return Err(H5Error::Format("trailing bytes after root group".into()));
        }
        Ok(File { root })
    }

    /// Write to disk atomically: the bytes land in a `.tmp` sibling
    /// first and are renamed into place, so a crash mid-write can never
    /// leave a truncated file under the final name.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| H5Error::Io(e).at(&tmp))?;
        std::fs::rename(&tmp, path).map_err(|e| H5Error::Io(e).at(path))?;
        Ok(())
    }

    /// Read from disk.  Errors carry the file path.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| H5Error::Io(e).at(path))?;
        Self::from_bytes(&bytes).map_err(|e| e.at(path))
    }
}

/// Infallible-by-construction slice→array conversion that still returns
/// a typed error instead of panicking if a caller miscounts.
fn sized<const N: usize>(s: &[u8]) -> Result<[u8; N]> {
    s.try_into().map_err(|_| H5Error::Format("short fixed-width field".into()))
}

/// FNV-1a 64-bit: small, fast, good enough to catch corruption (this is
/// an integrity check, not a cryptographic one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-dataset
/// integrity check added in format v2.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---- encoding ----

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::F64(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            put_str(s, out);
        }
    }
}

fn encode_dataset(d: &Dataset, out: &mut Vec<u8>) {
    let start = out.len();
    let shape = d.shape();
    out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
    for &s in shape {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    match d {
        Dataset::F64 { data, .. } => {
            out.push(0);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Dataset::I64 { data, .. } => {
            out.push(1);
            for x in data {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    // v2: a CRC-32 over the encoded dataset (shape + tag + payload)
    // pins corruption to the dataset it hit.
    let sum = crc32(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

fn encode_group(g: &Group, out: &mut Vec<u8>) {
    out.extend_from_slice(&(g.attrs.len() as u32).to_le_bytes());
    for (k, v) in &g.attrs {
        put_str(k, out);
        encode_value(v, out);
    }
    out.extend_from_slice(&(g.datasets.len() as u32).to_le_bytes());
    for (k, d) in &g.datasets {
        put_str(k, out);
        encode_dataset(d, out);
    }
    out.extend_from_slice(&(g.groups.len() as u32).to_le_bytes());
    for (k, sub) in &g.groups {
        put_str(k, out);
        encode_group(sub, out);
    }
}

// ---- decoding ----

struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
    /// Container version being decoded (controls per-dataset CRCs).
    version: u16,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.b.len() {
            return Err(H5Error::Format("unexpected end of payload".into()));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(sized(self.take(4)?)?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(sized(self.take(8)?)?))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(sized(self.take(8)?)?))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(sized(self.take(8)?)?))
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| H5Error::Format("invalid utf-8 name".into()))
    }
}

fn decode_value(c: &mut Cursor) -> Result<Value> {
    match c.u8()? {
        0 => Ok(Value::F64(c.f64()?)),
        1 => Ok(Value::I64(c.i64()?)),
        2 => Ok(Value::Str(c.string()?)),
        t => Err(H5Error::Format(format!("unknown value tag {t}"))),
    }
}

fn decode_dataset(c: &mut Cursor) -> Result<Dataset> {
    let start = c.at;
    let rank = c.u32()? as usize;
    if rank > 16 {
        return Err(H5Error::Format(format!("implausible dataset rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(c.u64()? as usize);
    }
    let len: usize = shape.iter().product();
    // Sanity-bound against corrupted lengths before allocating.
    if len.saturating_mul(8) > c.b.len() - c.at + 8 {
        return Err(H5Error::Format("dataset length exceeds payload".into()));
    }
    let ds = match c.u8()? {
        0 => {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(c.f64()?);
            }
            Dataset::F64 { shape, data }
        }
        1 => {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(c.i64()?);
            }
            Dataset::I64 { shape, data }
        }
        t => return Err(H5Error::Format(format!("unknown dataset tag {t}"))),
    };
    if c.version >= 2 {
        let expected = crc32(&c.b[start..c.at]);
        let found = u32::from_le_bytes(sized(c.take(4)?)?);
        if found != expected {
            return Err(H5Error::Corrupt { expected: expected as u64, found: found as u64 });
        }
    }
    Ok(ds)
}

fn decode_group(c: &mut Cursor) -> Result<Group> {
    let mut g = Group::default();
    for _ in 0..c.u32()? {
        let k = c.string()?;
        g.attrs.insert(k, decode_value(c)?);
    }
    for _ in 0..c.u32()? {
        let k = c.string()?;
        g.datasets.insert(k, decode_dataset(c)?);
    }
    for _ in 0..c.u32()? {
        let k = c.string()?;
        g.groups.insert(k, decode_group(c)?);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> File {
        let mut f = File::new();
        f.set_attr("code", Value::Str("V2D".into()));
        f.set_attr("run/timestep", Value::I64(42));
        f.set_attr("run/time", Value::F64(1.25e-3));
        f.write_dataset(
            "run/radiation/erad",
            Dataset::f64(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        f.write_dataset("run/grid/dims", Dataset::i64(vec![2], vec![200, 100]));
        f
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample();
        let g = File::from_bytes(&f.to_bytes()).expect("roundtrip");
        assert_eq!(f, g);
        assert_eq!(g.attr("run/timestep").unwrap(), &Value::I64(42));
        assert_eq!(g.dataset("run/radiation/erad").unwrap().as_f64().unwrap()[4], 5.0);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join("h5lite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.h5l");
        sample().save(&path).unwrap();
        let g = File::open(&path).unwrap();
        assert_eq!(g, sample());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        match File::from_bytes(&bytes) {
            Err(H5Error::Corrupt { .. }) | Err(H5Error::Format(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(File::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(File::from_bytes(&bytes), Err(H5Error::Format(_))));
    }

    #[test]
    fn missing_paths_report_not_found() {
        let f = sample();
        assert!(matches!(f.dataset("run/nope"), Err(H5Error::NotFound(_))));
        assert!(matches!(f.attr("nothing"), Err(H5Error::NotFound(_))));
        assert!(matches!(f.group("run/void"), Err(H5Error::NotFound(_))));
    }

    #[test]
    fn overwrite_replaces_dataset() {
        let mut f = sample();
        f.write_dataset("run/grid/dims", Dataset::i64(vec![2], vec![8, 8]));
        assert_eq!(f.dataset("run/grid/dims").unwrap().as_i64().unwrap(), &[8, 8]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn shape_mismatch_panics() {
        let _ = Dataset::f64(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dataset_crc_catches_payload_corruption() {
        // Flip one byte inside a dataset payload and *repair* the
        // whole-file FNV checksum: only the per-dataset CRC-32 can
        // catch it then.
        let mut bytes = sample().to_bytes();
        let plen = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        bytes[14 + plen / 2] ^= 0x01;
        let sum = fnv1a64(&bytes[14..14 + plen]);
        let end = bytes.len();
        bytes[end - 8..].copy_from_slice(&sum.to_le_bytes());
        match File::from_bytes(&bytes) {
            Err(H5Error::Corrupt { .. }) | Err(H5Error::Format(_)) => {}
            other => panic!("dataset corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn v1_files_still_decode() {
        // v1 = same container, no per-dataset CRCs.  An attrs-only file
        // has a version-independent payload, so rewriting the header
        // version field produces a genuine v1 file.
        let mut f = File::new();
        f.set_attr("run/timestep", Value::I64(7));
        let mut bytes = f.to_bytes();
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        let g = File::from_bytes(&bytes).expect("v1 decode");
        assert_eq!(g.attr("run/timestep").unwrap(), &Value::I64(7));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(File::from_bytes(&bytes), Err(H5Error::Format(_))));
    }

    #[test]
    fn save_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("h5lite_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.h5l");
        sample().save(&path).unwrap();
        assert!(path.exists());
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "tmp sibling left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_error_names_the_path() {
        let err = File::open("/nonexistent/v2d/checkpoint.h5l").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/v2d/checkpoint.h5l"));
        assert!(matches!(err.root_cause(), H5Error::Io(_)));
    }

    #[test]
    fn empty_file_roundtrips() {
        let f = File::new();
        assert_eq!(File::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn deterministic_encoding() {
        // BTreeMaps make byte output independent of insertion order.
        let mut a = File::new();
        a.set_attr("z", Value::I64(1));
        a.set_attr("a", Value::I64(2));
        let mut b = File::new();
        b.set_attr("a", Value::I64(2));
        b.set_attr("z", Value::I64(1));
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
