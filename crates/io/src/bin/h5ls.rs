//! `h5ls` for h5lite files: print the group tree, dataset shapes, and
//! attributes of a checkpoint — the inspection tool every self-describing
//! format needs.
//!
//! ```text
//! h5ls <file.h5l> [path]     # list the whole file, or one subtree
//! h5ls -d <file.h5l> <path>  # dump a dataset's values
//! ```

use v2d_io::{Dataset, File, Group, Value};

fn print_group(name: &str, g: &Group, indent: usize) {
    let pad = "  ".repeat(indent);
    println!("{pad}{name}/");
    let pad2 = "  ".repeat(indent + 1);
    for (k, v) in &g.attrs {
        let v = match v {
            Value::F64(x) => format!("{x}"),
            Value::I64(x) => format!("{x}"),
            Value::Str(s) => format!("{s:?}"),
        };
        println!("{pad2}@{k} = {v}");
    }
    for (k, d) in &g.datasets {
        let (ty, shape) = match d {
            Dataset::F64 { shape, .. } => ("f64", shape),
            Dataset::I64 { shape, .. } => ("i64", shape),
        };
        let dims: Vec<String> = shape.iter().map(|s| s.to_string()).collect();
        println!("{pad2}{k}  {ty}[{}]", dims.join(" × "));
    }
    for (k, sub) in &g.groups {
        print_group(k, sub, indent + 1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dump, rest) = match args.first().map(String::as_str) {
        Some("-d") => (true, &args[1..]),
        _ => (false, &args[..]),
    };
    let Some(path) = rest.first() else {
        eprintln!("usage: h5ls [-d] <file.h5l> [path]");
        std::process::exit(2);
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("h5ls: {path}: {e}");
            std::process::exit(1);
        }
    };
    match (dump, rest.get(1)) {
        (true, Some(dpath)) => match file.dataset(dpath) {
            Ok(Dataset::F64 { shape, data }) => {
                println!("# {dpath}: f64{shape:?}");
                for v in data {
                    println!("{v}");
                }
            }
            Ok(Dataset::I64 { shape, data }) => {
                println!("# {dpath}: i64{shape:?}");
                for v in data {
                    println!("{v}");
                }
            }
            Err(e) => {
                eprintln!("h5ls: {e}");
                std::process::exit(1);
            }
        },
        (true, None) => {
            eprintln!("h5ls: -d needs a dataset path");
            std::process::exit(2);
        }
        (false, sub) => {
            let (name, group) = match sub {
                Some(p) => match file.group(p) {
                    Ok(g) => (p.as_str(), g),
                    Err(e) => {
                        eprintln!("h5ls: {e}");
                        std::process::exit(1);
                    }
                },
                None => ("", &file.root),
            };
            print_group(name, group, 0);
        }
    }
}
