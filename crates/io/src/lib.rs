//! # v2d-io — "h5lite", the hierarchical data format substrate
//!
//! V2D uses HDF5 with MPI-IO for its checkpoint and output files.  HDF5
//! is not available here, so this crate implements the slice of it the
//! code actually needs: a **hierarchical, self-describing, checksummed
//! binary format** of groups, typed datasets (f64 / i64 arrays with
//! shapes), and string/scalar attributes, plus a gather-based parallel
//! writer ([`parallel`]) that assembles a domain-decomposed global field
//! from per-rank tiles — the same data path HDF5-over-MPI-IO provides on
//! a real cluster.
//!
//! Layout of a file:
//!
//! ```text
//! magic "H5LT" | version u16 | payload length u64 | payload | fnv1a-64 of payload
//! ```
//!
//! The payload is a recursive little-endian encoding of the root group.
//! Everything is length-prefixed; decoding validates the checksum before
//! interpreting a single byte of structure.

// Checkpoint I/O must fail through typed errors, never panic: a corrupt
// file is recoverable, a crashed simulation is not.  Tests and binaries
// (separate crates) are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod format;
pub mod parallel;

pub use format::{Dataset, File, Group, H5Error, Value};
pub use parallel::gather_global;
