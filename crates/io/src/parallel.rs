//! Assembly of domain-decomposed fields into global datasets.
//!
//! On a real cluster HDF5/MPI-IO writes each rank's tile into the right
//! hyperslab of one file.  Here the communication substrate gathers the
//! tiles (see `v2d-comm`'s `allgatherv`), and this module does the
//! hyperslab arithmetic: scattering `(tile extents, tile data)` pairs
//! into a row-major global array.  It is deliberately free of any
//! dependency on the communicator so it can be tested exhaustively in
//! isolation.

/// One rank's contribution: tile extents within the global grid plus the
/// tile's values for each of `nspec` species, species-major, x1 fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct TileData {
    /// First owned global zone in x1 and extent.
    pub i1_start: usize,
    pub n1: usize,
    /// First owned global zone in x2 and extent.
    pub i2_start: usize,
    pub n2: usize,
    /// `nspec · n2 · n1` values.
    pub data: Vec<f64>,
}

/// Scatter per-rank tiles into a global `nspec × gn2 × gn1` row-major
/// array (x1 fastest — V2D's dictionary ordering).
///
/// # Panics
/// If tiles overlap, fall outside the grid, carry the wrong amount of
/// data, or fail to cover the grid exactly.
pub fn gather_global(gn1: usize, gn2: usize, nspec: usize, tiles: &[TileData]) -> Vec<f64> {
    let mut out = vec![f64::NAN; nspec * gn1 * gn2];
    let mut covered = 0usize;
    for t in tiles {
        assert_eq!(
            t.data.len(),
            nspec * t.n1 * t.n2,
            "tile at ({},{}) has {} values, expected {}",
            t.i1_start,
            t.i2_start,
            t.data.len(),
            nspec * t.n1 * t.n2
        );
        assert!(
            t.i1_start + t.n1 <= gn1 && t.i2_start + t.n2 <= gn2,
            "tile at ({},{}) size {}×{} exceeds grid {gn1}×{gn2}",
            t.i1_start,
            t.i2_start,
            t.n1,
            t.n2
        );
        let mut k = 0;
        for s in 0..nspec {
            for i2 in 0..t.n2 {
                for i1 in 0..t.n1 {
                    let g = s * gn1 * gn2 + (t.i2_start + i2) * gn1 + (t.i1_start + i1);
                    assert!(
                        out[g].is_nan(),
                        "overlapping tiles at global zone ({}, {})",
                        t.i1_start + i1,
                        t.i2_start + i2
                    );
                    out[g] = t.data[k];
                    k += 1;
                }
            }
        }
        covered += t.n1 * t.n2;
    }
    assert_eq!(covered, gn1 * gn2, "tiles do not cover the grid exactly");
    debug_assert!(out.iter().all(|v| !v.is_nan()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(i1: usize, n1: usize, i2: usize, n2: usize, gn1: usize, nspec: usize) -> TileData {
        let mut data = Vec::new();
        for s in 0..nspec {
            for b in 0..n2 {
                for a in 0..n1 {
                    data.push((s * 10_000 + (i2 + b) * 100 + (i1 + a)) as f64);
                }
            }
        }
        let _ = gn1;
        TileData { i1_start: i1, n1, i2_start: i2, n2, data }
    }

    #[test]
    fn four_tiles_assemble_in_global_order() {
        let tiles = vec![
            tile(0, 2, 0, 2, 4, 2),
            tile(2, 2, 0, 2, 4, 2),
            tile(0, 2, 2, 2, 4, 2),
            tile(2, 2, 2, 2, 4, 2),
        ];
        let g = gather_global(4, 4, 2, &tiles);
        for s in 0..2 {
            for i2 in 0..4 {
                for i1 in 0..4 {
                    assert_eq!(g[s * 16 + i2 * 4 + i1], (s * 10_000 + i2 * 100 + i1) as f64);
                }
            }
        }
    }

    #[test]
    fn uneven_tiles_work() {
        let tiles = vec![tile(0, 3, 0, 5, 5, 1), tile(3, 2, 0, 5, 5, 1)];
        let g = gather_global(5, 5, 1, &tiles);
        assert_eq!(g[4], 4.0);
        assert_eq!(g[5], 100.0);
    }

    #[test]
    #[should_panic(expected = "overlapping tiles")]
    fn overlap_rejected() {
        let tiles = vec![tile(0, 2, 0, 2, 2, 1), tile(1, 1, 0, 2, 2, 1)];
        let _ = gather_global(2, 2, 1, &tiles);
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn gap_rejected() {
        let tiles = vec![tile(0, 1, 0, 2, 2, 1)];
        let _ = gather_global(2, 2, 1, &tiles);
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn out_of_bounds_rejected() {
        let tiles = vec![tile(1, 2, 0, 2, 2, 1)];
        let _ = gather_global(2, 2, 1, &tiles);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_data_length_rejected() {
        let mut t = tile(0, 2, 0, 2, 2, 1);
        t.data.pop();
        let _ = gather_global(2, 2, 1, &[t]);
    }
}
