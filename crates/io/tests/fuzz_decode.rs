//! Robustness: decoding must never panic, whatever the bytes — corrupt
//! checkpoints report errors, they don't crash the simulation.

use proptest::prelude::*;
use v2d_io::{Dataset, File, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = File::from_bytes(&bytes);
    }

    #[test]
    fn bitflips_of_valid_files_never_panic(
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let mut f = File::new();
        f.set_attr("run/time", Value::F64(1.5));
        f.write_dataset("run/data", Dataset::f64(vec![8, 4], (0..32).map(f64::from).collect()));
        let mut bytes = f.to_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        match File::from_bytes(&bytes) {
            // Either detected as corrupt/garbled...
            Err(_) => {}
            // ...or the flip hit a dataset payload byte in a way the
            // checksum catches — from_bytes validates the checksum first,
            // so an Ok result can only mean we flipped a bit and flipped
            // it back (impossible here) — any Ok must equal the original.
            Ok(g) => prop_assert_eq!(g, f),
        }
    }

    #[test]
    fn truncations_of_valid_files_never_panic(cut in 0usize..4096) {
        let mut f = File::new();
        f.write_dataset("d", Dataset::i64(vec![16], (0..16).collect()));
        let bytes = f.to_bytes();
        let cut = cut % (bytes.len() + 1);
        let _ = File::from_bytes(&bytes[..cut]);
    }
}
