//! # v2d-perf — perf-stat / PAPI / TAU-like instrumentation
//!
//! The paper measured V2D with three tool families, none of which exist
//! for a simulated machine, so this crate rebuilds their *interfaces*
//! over the virtual clock:
//!
//! * [`PerfStat`] — the `perf stat -e duration_time -e cpu-cycles`
//!   session used for every Table I cell: wraps a region of execution and
//!   reports wall duration and cycle count of the modeled run;
//! * [`PapiCounters`] — PAPI-style start/read counters
//!   (`PAPI_TOT_CYC`, `PAPI_FP_OPS`, bytes moved, per-class calls), read
//!   from the kernel accounting the cost model maintains — used for the
//!   Table II driver and the in-text §II-E claims;
//! * [`Profiler`] — a TAU-like scoped routine profiler with
//!   inclusive/exclusive virtual times and a ParaProf-style text report
//!   ("enabled us to see which routines contributed most to the total
//!   time without the need to add additional routine calls").
//!
//! All of it is deterministic: the numbers come from [`v2d_machine`]'s
//! clocks, never from the host.

use std::collections::HashMap;
use std::fmt::Write as _;

use v2d_machine::{CostSink, KernelClass, SimDuration};

/// A `perf stat`-like measurement session over one compiler lane.
#[derive(Debug, Clone, Copy)]
pub struct PerfStat {
    start: SimDuration,
}

/// What a [`PerfStat`] session measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Elapsed simulated seconds (`-e duration_time`).
    pub duration_time: f64,
    /// Elapsed simulated cycles (`-e cpu-cycles`).
    pub cpu_cycles: u64,
}

impl PerfStat {
    /// Begin measuring on `lane`'s clock.
    pub fn start(lane: &CostSink) -> Self {
        PerfStat { start: lane.clock.now() }
    }

    /// Finish and report.
    pub fn stop(self, lane: &CostSink) -> PerfReport {
        let d = lane.clock.now() - self.start;
        PerfReport { duration_time: d.as_secs(lane.model.freq_hz), cpu_cycles: d.cycles() }
    }
}

impl std::fmt::Display for PerfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, " Performance counter stats (simulated):")?;
        writeln!(f)?;
        writeln!(f, "  {:>20.6} sec  duration_time", self.duration_time)?;
        writeln!(f, "  {:>20}      cpu-cycles", self.cpu_cycles)
    }
}

/// PAPI-style hardware counters over one compiler lane.
#[derive(Debug, Clone)]
pub struct PapiCounters {
    start_cycles: u64,
    start_flops: u64,
    start_bytes: u64,
    start_mpi: u64,
}

/// A PAPI counter reading (deltas since [`PapiCounters::start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PapiReading {
    /// `PAPI_TOT_CYC`.
    pub tot_cyc: u64,
    /// `PAPI_FP_OPS` (double-precision operations).
    pub fp_ops: u64,
    /// Bytes streamed by the kernels.
    pub bytes: u64,
    /// Cycles spent inside communication.
    pub mpi_cyc: u64,
}

impl PapiCounters {
    /// Snapshot the counters.
    pub fn start(lane: &CostSink) -> Self {
        PapiCounters {
            start_cycles: lane.clock.now().cycles(),
            start_flops: lane.counters.total_flops(),
            start_bytes: lane.counters.bytes.iter().sum(),
            start_mpi: lane.mpi_cycles,
        }
    }

    /// Read the deltas since `start`.
    pub fn read(&self, lane: &CostSink) -> PapiReading {
        PapiReading {
            tot_cyc: lane.clock.now().cycles() - self.start_cycles,
            fp_ops: lane.counters.total_flops() - self.start_flops,
            bytes: lane.counters.bytes.iter().sum::<u64>() - self.start_bytes,
            mpi_cyc: lane.mpi_cycles - self.start_mpi,
        }
    }
}

impl PapiReading {
    /// Seconds at frequency `freq_hz`.
    pub fn secs(&self, freq_hz: f64) -> f64 {
        self.tot_cyc as f64 / freq_hz
    }

    /// Achieved flops per cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.tot_cyc == 0 {
            0.0
        } else {
            self.fp_ops as f64 / self.tot_cyc as f64
        }
    }
}

/// Per-kernel-class breakdown of a lane's accounting — the reproduction
/// of the paper's §II-E analysis ("the majority of time was spent in the
/// matrix-vector multiplications…").
pub fn class_breakdown(lane: &CostSink) -> String {
    let freq = lane.model.freq_hz;
    let total = lane.clock.now().cycles().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>14} {:>14} {:>8}",
        "class", "calls", "secs", "Mflops", "%time"
    );
    for class in KernelClass::all() {
        let i = class.index();
        let calls = lane.counters.calls[i];
        if calls == 0 {
            continue;
        }
        let secs = lane.counters.cycles[i] as f64 / freq;
        let mflop = lane.counters.flops[i] as f64 / 1e6;
        let pct = 100.0 * lane.counters.cycles[i] as f64 / total as f64;
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>14.3} {:>14.2} {:>7.1}%",
            class.name(),
            calls,
            secs,
            mflop,
            pct
        );
    }
    let mpi_secs = lane.mpi_cycles as f64 / freq;
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>14.3} {:>14} {:>7.1}%",
        "MPI",
        "-",
        mpi_secs,
        "-",
        100.0 * lane.mpi_cycles as f64 / total as f64
    );
    out
}

/// Cluster-wide aggregate of per-rank lane accounting: per-class time
/// totals/maxima and MPI share across ranks, formatted like the per-node
/// roll-up views of TAU/ParaProf.  Feed it each rank's Cray-opt (or any
/// single) lane.
pub fn cluster_report(lanes: &[&CostSink]) -> String {
    assert!(!lanes.is_empty(), "need at least one rank");
    let freq = lanes[0].model.freq_hz;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14}",
        "class", "max/rank s", "mean/rank s", "total s"
    );
    for class in KernelClass::all() {
        let i = class.index();
        let cycles: Vec<u64> = lanes.iter().map(|l| l.counters.cycles[i]).collect();
        if cycles.iter().all(|&c| c == 0) {
            continue;
        }
        let max = *cycles.iter().max().expect("nonempty") as f64 / freq;
        let total: f64 = cycles.iter().map(|&c| c as f64 / freq).sum();
        let _ = writeln!(
            out,
            "{:<10} {:>14.3} {:>14.3} {:>14.3}",
            class.name(),
            max,
            total / lanes.len() as f64,
            total
        );
    }
    let mpi: Vec<f64> = lanes.iter().map(|l| l.mpi_secs()).collect();
    let max = mpi.iter().cloned().fold(0.0f64, f64::max);
    let total: f64 = mpi.iter().sum();
    let _ = writeln!(
        out,
        "{:<10} {:>14.3} {:>14.3} {:>14.3}",
        "MPI",
        max,
        total / lanes.len() as f64,
        total
    );
    let wall = lanes.iter().map(|l| l.elapsed_secs()).fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "
job wall time (slowest rank): {wall:.3} s over {} ranks",
        lanes.len()
    );
    out
}

/// Accumulated statistics for one profiled routine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoutineStats {
    /// Times the routine was entered.
    pub calls: u64,
    /// Total time including children.
    pub inclusive: SimDuration,
    /// Total time excluding profiled children.
    pub exclusive: SimDuration,
}

/// A TAU-like nesting profiler over one compiler lane's clock.
///
/// `enter`/`exit` calls must be properly nested (checked); the report is
/// a ParaProf-style table sorted by exclusive time.
#[derive(Debug, Default)]
pub struct Profiler {
    stack: Vec<Frame>,
    routines: HashMap<String, RoutineStats>,
}

#[derive(Debug)]
struct Frame {
    name: String,
    entered: SimDuration,
    child_time: SimDuration,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Enter routine `name` at the lane's current virtual time.
    pub fn enter(&mut self, lane: &CostSink, name: &str) {
        self.stack.push(Frame {
            name: name.to_string(),
            entered: lane.clock.now(),
            child_time: SimDuration::ZERO,
        });
    }

    /// Exit routine `name`.
    ///
    /// # Panics
    /// If `name` does not match the innermost open routine.
    pub fn exit(&mut self, lane: &CostSink, name: &str) {
        let frame = self.stack.pop().expect("profiler exit without matching enter");
        assert_eq!(frame.name, name, "mismatched profiler nesting");
        let inclusive = lane.clock.now() - frame.entered;
        let exclusive = inclusive - frame.child_time.min(inclusive);
        let e = self.routines.entry(frame.name).or_default();
        e.calls += 1;
        e.inclusive += inclusive;
        e.exclusive += exclusive;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_time += inclusive;
        }
    }

    /// Statistics for one routine, if profiled.
    pub fn routine(&self, name: &str) -> Option<RoutineStats> {
        self.routines.get(name).copied()
    }

    /// ParaProf-style report, sorted by exclusive time, with percentages
    /// of the given total.
    pub fn report(&self, lane: &CostSink) -> String {
        assert!(self.stack.is_empty(), "profiler report with open routines");
        let freq = lane.model.freq_hz;
        let total = lane.clock.now().cycles().max(1) as f64;
        let mut rows: Vec<(&String, &RoutineStats)> = self.routines.iter().collect();
        // Name as the secondary key: HashMap iteration order must never
        // leak into the report (it feeds byte-exact golden outputs).
        rows.sort_by_key(|(name, st)| (std::cmp::Reverse(st.exclusive), name.as_str()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>14} {:>14} {:>8}",
            "routine", "calls", "excl secs", "incl secs", "%excl"
        );
        for (name, st) in rows {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14.3} {:>14.3} {:>7.1}%",
                name,
                st.calls,
                st.exclusive.as_secs(freq),
                st.inclusive.as_secs(freq),
                100.0 * st.exclusive.cycles() as f64 / total
            );
        }
        out
    }
}

/// Lets a [`v2d_machine::ExecCtx`] carry this profiler, so solvers and
/// steppers record their scopes through the execution context instead of
/// threading a separate profiler parameter down the call chain.
impl v2d_machine::ProfilerScope for Profiler {
    fn enter(&mut self, lane: &CostSink, name: &str) {
        Profiler::enter(self, lane, name);
    }

    fn exit(&mut self, lane: &CostSink, name: &str) {
        Profiler::exit(self, lane, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_machine::{CompilerProfile, KernelShape};

    fn lane() -> CostSink {
        CostSink::new(CompilerProfile::cray_opt())
    }

    fn burn(lane: &mut CostSink, class: KernelClass, elems: usize) {
        lane.charge(&KernelShape::streaming(class, elems, 2, 2, 1, 1 << 22));
    }

    #[test]
    fn perf_stat_measures_region_only() {
        let mut l = lane();
        burn(&mut l, KernelClass::Daxpy, 1000);
        let session = PerfStat::start(&l);
        burn(&mut l, KernelClass::Daxpy, 5000);
        let rep = session.stop(&l);
        assert!(rep.cpu_cycles > 0);
        assert!((rep.duration_time - rep.cpu_cycles as f64 / 1.8e9).abs() < 1e-12);
        let text = rep.to_string();
        assert!(text.contains("duration_time") && text.contains("cpu-cycles"));
    }

    #[test]
    fn papi_counts_flops_and_cycles() {
        let mut l = lane();
        let papi = PapiCounters::start(&l);
        burn(&mut l, KernelClass::MatVec, 500);
        let r = papi.read(&l);
        assert_eq!(r.fp_ops, 1000);
        assert!(r.tot_cyc > 0);
        assert!(r.bytes > 0);
        assert_eq!(r.mpi_cyc, 0);
        assert!(r.flops_per_cycle() > 0.0);
    }

    #[test]
    fn papi_reads_are_deltas() {
        let mut l = lane();
        burn(&mut l, KernelClass::DotProd, 2000);
        // Counters started after the first burn must exclude it.
        let papi = PapiCounters::start(&l);
        assert_eq!(papi.read(&l).fp_ops, 0);
        burn(&mut l, KernelClass::DotProd, 300);
        assert_eq!(papi.read(&l).fp_ops, 600);
    }

    #[test]
    fn class_breakdown_lists_used_classes_only() {
        let mut l = lane();
        burn(&mut l, KernelClass::MatVec, 1000);
        burn(&mut l, KernelClass::Precond, 1000);
        let text = class_breakdown(&l);
        assert!(text.contains("MATVEC"));
        assert!(text.contains("PRECOND"));
        assert!(!text.contains("DSCAL"));
        assert!(text.contains("MPI"));
    }

    #[test]
    fn profiler_nesting_and_exclusive_times() {
        let mut l = lane();
        let mut prof = Profiler::new();
        prof.enter(&l, "solve");
        burn(&mut l, KernelClass::Daxpy, 1000); // exclusive to solve
        prof.enter(&l, "matvec");
        burn(&mut l, KernelClass::MatVec, 4000);
        prof.exit(&l, "matvec");
        prof.exit(&l, "solve");

        let solve = prof.routine("solve").unwrap();
        let matvec = prof.routine("matvec").unwrap();
        assert_eq!(solve.calls, 1);
        assert_eq!(matvec.calls, 1);
        assert!(solve.inclusive > matvec.inclusive);
        assert_eq!(solve.inclusive, solve.exclusive + matvec.inclusive);
        assert_eq!(matvec.inclusive, matvec.exclusive);

        let rep = prof.report(&l);
        assert!(rep.contains("matvec") && rep.contains("solve"));
    }

    #[test]
    fn report_is_byte_stable_across_identical_runs() {
        // Zero-cost routines tie on exclusive cycles, so the sort must
        // fall back to the name — otherwise HashMap iteration order
        // leaks into the report and the golden outputs flake.
        let build = || {
            let mut l = lane();
            let mut prof = Profiler::new();
            for name in ["zeta", "alpha", "mu", "beta", "omega", "kappa"] {
                prof.enter(&l, name);
                prof.exit(&l, name);
            }
            prof.enter(&l, "work");
            burn(&mut l, KernelClass::Daxpy, 1000);
            prof.exit(&l, "work");
            prof.report(&l)
        };
        let first = build();
        for _ in 0..16 {
            assert_eq!(build(), first, "profiler report is not byte-stable");
        }
        // Ties are resolved alphabetically.
        let alpha = first.find("alpha").unwrap();
        let zeta = first.find("zeta").unwrap();
        assert!(alpha < zeta, "tied routines must sort by name:\n{first}");
    }

    #[test]
    #[should_panic(expected = "mismatched profiler nesting")]
    fn profiler_rejects_bad_nesting() {
        let l = lane();
        let mut prof = Profiler::new();
        prof.enter(&l, "a");
        prof.enter(&l, "b");
        prof.exit(&l, "a");
    }

    #[test]
    fn cluster_report_rolls_up_ranks() {
        let mut a = lane();
        let mut b = lane();
        burn(&mut a, KernelClass::MatVec, 1000);
        burn(&mut b, KernelClass::MatVec, 3000);
        b.charge_mpi_secs(0.5);
        let text = cluster_report(&[&a, &b]);
        assert!(text.contains("MATVEC"));
        assert!(text.contains("MPI"));
        assert!(text.contains("2 ranks"));
        // max/rank must reflect the slower rank.
        let max_line = text.lines().find(|l| l.starts_with("MATVEC")).unwrap();
        let max: f64 = max_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let b_secs = b.counters.cycles[KernelClass::MatVec.index()] as f64 / b.model.freq_hz;
        assert!((max - b_secs).abs() < 1e-3 + 1e-3 * b_secs);
    }

    #[test]
    fn repeated_calls_accumulate() {
        let mut l = lane();
        let mut prof = Profiler::new();
        for _ in 0..3 {
            prof.enter(&l, "kernel");
            burn(&mut l, KernelClass::Dscal, 100);
            prof.exit(&l, "kernel");
        }
        assert_eq!(prof.routine("kernel").unwrap().calls, 3);
    }
}
