//! The V2D vector kernels over [`TileVec`] interiors.
//!
//! Each kernel executes natively — the row-wise slice loops live in
//! [`crate::backend::native`], shared with the [`crate::backend`]
//! dispatch surface so there is one implementation of each operation —
//! and charges its [`v2d_machine::KernelShape`] through the
//! [`ExecCtx`], so the same call both produces the numerics and
//! advances all modeled compilers' virtual clocks.  Memory residency of
//! the streaming charge comes from the context's *ambient* working set
//! ([`ExecCtx::ws`]), which the enclosing solver scopes once instead of
//! every call site threading a `ws` argument.
//!
//! Naming follows the paper's Table II: DPROD, DAXPY, DSCAL
//! (`y ← c − d·y`), DDAXPY (`w ← a·x + b·y + z`).

use v2d_machine::{ExecCtx, KernelClass};

use crate::backend::native;
use crate::tilevec::TileVec;
use crate::NSPEC;

/// Local part of the dot product `Σ x·y` (the global value needs an
/// allreduce; V2D gangs several of these partials into one reduction).
pub fn dprod_local(cx: &mut ExecCtx, x: &TileVec, y: &TileVec) -> f64 {
    debug_assert_eq!((x.n1(), x.n2()), (y.n1(), y.n2()));
    let mut acc = 0.0;
    for s in 0..NSPEC {
        for i2 in 0..x.n2() {
            acc += native::dprod(x.row(s, i2), y.row(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::DotProd, x.n_owned(), 2, 2, 0);
    acc
}

/// Local part of `‖x‖²`.
pub fn norm2_local(cx: &mut ExecCtx, x: &TileVec) -> f64 {
    dprod_local(cx, x, x)
}

/// `y ← a·x + y`
pub fn daxpy(cx: &mut ExecCtx, a: f64, x: &TileVec, y: &mut TileVec) {
    debug_assert_eq!((x.n1(), x.n2()), (y.n1(), y.n2()));
    for s in 0..NSPEC {
        for i2 in 0..x.n2() {
            native::daxpy(a, x.row(s, i2), y.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Daxpy, x.n_owned(), 2, 2, 1);
}

/// `y ← c − d·y` (the paper's DSCAL form).
pub fn dscal(cx: &mut ExecCtx, c: f64, d: f64, y: &mut TileVec) {
    for s in 0..NSPEC {
        for i2 in 0..y.n2() {
            native::dscal(c, d, y.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Dscal, y.n_owned(), 2, 1, 1);
}

/// `w ← a·x + b·y + w` — the in-place form of the paper's DDAXPY
/// (`w` plays the role of the third operand `z`).
pub fn ddaxpy(cx: &mut ExecCtx, a: f64, x: &TileVec, b: f64, y: &TileVec, w: &mut TileVec) {
    debug_assert_eq!((x.n1(), x.n2()), (w.n1(), w.n2()));
    debug_assert_eq!((y.n1(), y.n2()), (w.n1(), w.n2()));
    for s in 0..NSPEC {
        for i2 in 0..x.n2() {
            native::ddaxpy_acc(a, x.row(s, i2), b, y.row(s, i2), w.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Ddaxpy, w.n_owned(), 4, 3, 1);
}

/// BiCGSTAB's search-direction update `p ← r + β·(p − ω·v)`, fused the
/// way V2D's combined scaling/addition routine does it.
pub fn p_update(
    cx: &mut ExecCtx,
    beta: f64,
    omega: f64,
    r: &TileVec,
    v: &TileVec,
    p: &mut TileVec,
) {
    debug_assert_eq!((r.n1(), r.n2()), (p.n1(), p.n2()));
    for s in 0..NSPEC {
        for i2 in 0..r.n2() {
            native::p_update(beta, omega, r.row(s, i2), v.row(s, i2), p.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Ddaxpy, p.n_owned(), 4, 3, 1);
}

/// `w ← x − a·y` (residual-style update, e.g. `s = r − α·v`).
pub fn xmay(cx: &mut ExecCtx, x: &TileVec, a: f64, y: &TileVec, w: &mut TileVec) {
    debug_assert_eq!((x.n1(), x.n2()), (w.n1(), w.n2()));
    for s in 0..NSPEC {
        for i2 in 0..x.n2() {
            native::xmay(a, x.row(s, i2), y.row(s, i2), w.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Daxpy, w.n_owned(), 2, 2, 1);
}

/// `r ← b − r` in place: the residual finisher.  `r` arrives holding
/// `A·x` and leaves holding `b − A·x`, so the solvers need no residual
/// scratch copy (the `r.clone()` this replaces was never charged, so
/// the simulated cost — one fused streaming pass, same as [`xmay`] —
/// is unchanged).
pub fn residual_into(cx: &mut ExecCtx, b: &TileVec, r: &mut TileVec) {
    debug_assert_eq!((b.n1(), b.n2()), (r.n1(), r.n2()));
    for s in 0..NSPEC {
        for i2 in 0..b.n2() {
            native::residual(b.row(s, i2), r.row_mut(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Daxpy, r.n_owned(), 2, 2, 1);
}

/// Copy `x` into `y` (interior only; ghosts are refreshed by the next
/// operator application anyway).
pub fn copy(cx: &mut ExecCtx, x: &TileVec, y: &mut TileVec) {
    debug_assert_eq!((x.n1(), x.n2()), (y.n1(), y.n2()));
    for s in 0..NSPEC {
        for i2 in 0..x.n2() {
            y.row_mut(s, i2).copy_from_slice(x.row(s, i2));
        }
    }
    cx.charge_streaming(KernelClass::Other, x.n_owned(), 0, 1, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_machine::{CompilerProfile, MultiCostSink};

    fn sink() -> MultiCostSink {
        MultiCostSink::single(CompilerProfile::cray_opt())
    }

    fn field(n1: usize, n2: usize, seed: f64) -> TileVec {
        let mut v = TileVec::new(n1, n2);
        v.fill_with(|s, i1, i2| ((s * 31 + i1 * 7 + i2 * 13) as f64 * seed).sin());
        v
    }

    #[test]
    fn dprod_matches_flat_oracle() {
        let x = field(7, 5, 0.3);
        let y = field(7, 5, 0.7);
        let mut sk = sink();
        let mut cx = ExecCtx::new(&mut sk);
        let got = dprod_local(&mut cx, &x, &y);
        let expect: f64 =
            x.interior_to_vec().iter().zip(y.interior_to_vec()).map(|(a, b)| a * b).sum();
        assert!((got - expect).abs() < 1e-14);
        assert!(sk.lanes[0].counters.calls[v2d_machine::KernelClass::DotProd.index()] == 1);
    }

    #[test]
    fn daxpy_and_xmay() {
        let x = field(6, 4, 0.3);
        let y0 = field(6, 4, 0.9);
        let mut y = y0.clone();
        let mut sk = sink();
        let mut cx = ExecCtx::new(&mut sk);
        daxpy(&mut cx, 2.5, &x, &mut y);
        for s in 0..NSPEC {
            for i2 in 0..4 {
                for i1 in 0..6isize {
                    let e = y0.get(s, i1, i2 as isize) + 2.5 * x.get(s, i1, i2 as isize);
                    assert!((y.get(s, i1, i2 as isize) - e).abs() < 1e-15);
                }
            }
        }
        let mut w = TileVec::new(6, 4);
        xmay(&mut cx, &y0, 0.5, &x, &mut w);
        assert!((w.get(0, 2, 2) - (y0.get(0, 2, 2) - 0.5 * x.get(0, 2, 2))).abs() < 1e-15);
    }

    #[test]
    fn residual_into_matches_xmay() {
        let b = field(6, 5, 0.4);
        let ax = field(6, 5, 0.8);
        let mut sk = sink();
        let mut cx = ExecCtx::new(&mut sk);
        // Reference: w ← b − 1·ax via the out-of-place kernel.
        let mut w = TileVec::new(6, 5);
        xmay(&mut cx, &b, 1.0, &ax, &mut w);
        // In place: r starts as A·x, ends as b − A·x.
        let mut r = ax.clone();
        residual_into(&mut cx, &b, &mut r);
        assert_eq!(r.interior_to_vec(), w.interior_to_vec());
        // Both charge the same Daxpy shape (two calls recorded).
        assert_eq!(sk.lanes[0].counters.calls[KernelClass::Daxpy.index()], 2);
    }

    #[test]
    fn dscal_is_c_minus_dy() {
        let mut y = field(5, 5, 0.4);
        let y0 = y.clone();
        let mut sk = sink();
        dscal(&mut ExecCtx::new(&mut sk), 1.5, 0.25, &mut y);
        assert!((y.get(1, 3, 2) - (1.5 - 0.25 * y0.get(1, 3, 2))).abs() < 1e-15);
    }

    #[test]
    fn ddaxpy_accumulates() {
        let x = field(4, 4, 0.2);
        let y = field(4, 4, 0.6);
        let w0 = field(4, 4, 1.1);
        let mut w = w0.clone();
        let mut sk = sink();
        ddaxpy(&mut ExecCtx::new(&mut sk), 2.0, &x, -1.5, &y, &mut w);
        let e = w0.get(0, 1, 1) + 2.0 * x.get(0, 1, 1) - 1.5 * y.get(0, 1, 1);
        assert!((w.get(0, 1, 1) - e).abs() < 1e-15);
    }

    #[test]
    fn p_update_formula() {
        let r = field(4, 3, 0.2);
        let v = field(4, 3, 0.8);
        let p0 = field(4, 3, 1.3);
        let mut p = p0.clone();
        let mut sk = sink();
        p_update(&mut ExecCtx::new(&mut sk), 0.7, 0.3, &r, &v, &mut p);
        let e = r.get(1, 2, 1) + 0.7 * (p0.get(1, 2, 1) - 0.3 * v.get(1, 2, 1));
        assert!((p.get(1, 2, 1) - e).abs() < 1e-15);
    }

    #[test]
    fn kernels_advance_all_lanes() {
        let x = field(8, 8, 0.5);
        let mut y = field(8, 8, 0.25);
        let mut sk = MultiCostSink::all_compilers();
        let mut cx = ExecCtx::new(&mut sk);
        cx.set_ws(1 << 24);
        daxpy(&mut cx, 1.0, &x, &mut y);
        for lane in &sk.lanes {
            assert!(lane.clock.now().cycles() > 0);
        }
        // HBM-resident working set: the unvectorized lane must be slower.
        let opt =
            sk.lanes.iter().find(|l| l.profile.id == v2d_machine::CompilerId::CrayOpt).unwrap();
        let noopt =
            sk.lanes.iter().find(|l| l.profile.id == v2d_machine::CompilerId::CrayNoOpt).unwrap();
        assert!(noopt.clock.now() > opt.clock.now());
    }
}
