//! Krylov solvers: BiCGSTAB (classic and V2D's restructured, inner-
//! product-ganging form) and CG as the symmetric baseline.
//!
//! The paper (§I-C): V2D "uses a restructured version of the BiCGSTAB
//! algorithm, which gangs inner products to reduce the number of parallel
//! global reduction operations required per iteration".  The
//! [`BicgVariant::Ganged`] solver here performs exactly **two** global
//! reductions per iteration:
//!
//! 1. `⟨r̂, v⟩` after the first operator application, and
//! 2. a single five-way gang `{⟨t,s⟩, ⟨t,t⟩, ⟨s,s⟩, ⟨r̂,s⟩, ⟨r̂,t⟩}`
//!    after the second, from which ω, the new residual norm
//!    (`‖r‖² = ⟨s,s⟩ − 2ω⟨t,s⟩ + ω²⟨t,t⟩`) and the next iteration's
//!    ρ (`⟨r̂,r⟩ = ⟨r̂,s⟩ − ω⟨r̂,t⟩`) all follow algebraically.
//!
//! The [`BicgVariant::Classic`] form issues five separate reductions per
//! iteration; both produce the same iterates up to floating-point
//! reassociation, which the test suite verifies.
//!
//! All three solvers draw their tile-shaped scratch from a caller-owned
//! [`SolverWorkspace`] and compute the initial residual in place
//! ([`kernels::residual_into`]), so a warm solve performs **zero**
//! `TileVec` heap allocations — see the `workspace_alloc` integration
//! test and the `ablation_alloc` bench.

use v2d_comm::{coll_site, Comm, CommError, ReduceOp};
use v2d_machine::{AttrVal, ExecCtx};

use crate::kernels;
use crate::op::LinearOp;
use crate::precond::Preconditioner;
use crate::tilevec::TileVec;
use crate::workspace::SolverWorkspace;

/// Which BiCGSTAB reduction structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BicgVariant {
    /// Textbook van der Vorst form: one allreduce per inner product.
    Classic,
    /// V2D's restructured form: two reduction points per iteration.
    Ganged,
}

/// Solver options.
#[derive(Debug, Clone, Copy)]
pub struct SolveOpts {
    /// Convergence: `‖r‖ ≤ tol · ‖b‖`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Reduction structure (BiCGSTAB only).
    pub variant: BicgVariant,
    /// Iterations without a new best residual norm before BiCGSTAB
    /// declares stagnation (and restarts, if restarts remain).  Chosen
    /// well above the longest plateau of a healthy solve.
    pub stall_window: usize,
    /// True-residual restarts BiCGSTAB may spend on ρ/ω/stagnation
    /// breakdowns before giving the system up to the fallback cascade.
    pub max_restarts: u32,
}

impl Default for SolveOpts {
    fn default() -> Self {
        SolveOpts {
            tol: 1e-9,
            max_iters: 10_000,
            variant: BicgVariant::Ganged,
            stall_window: 250,
            max_restarts: 2,
        }
    }
}

/// Why an iterative solve gave up — the cause the seed implementation
/// silently folded into `converged: false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownReason {
    /// `⟨r̂, r⟩` collapsed to zero — the classic BiCGSTAB breakdown.
    RhoZero,
    /// ω collapsed to zero (`t ≈ 0` while `s` stayed large).
    OmegaZero,
    /// `⟨r̂, A·p̂⟩` collapsed to zero.
    RhatVZero,
    /// `⟨p, A·p⟩` collapsed — CG on an indefinite or defective system.
    PapZero,
    /// A residual or inner product became NaN/Inf: the data itself is
    /// poisoned, so restarting cannot help.
    NonFinite,
    /// No new best residual norm for a full stall window.
    Stagnation,
    /// A scheduled fault-injection event forced this breakdown.
    Injected,
    /// The iteration cap expired before the tolerance was met.
    MaxIters,
}

impl BreakdownReason {
    /// Stable lower-snake label (metric-name component, trace attribute).
    pub fn name(self) -> &'static str {
        match self {
            BreakdownReason::RhoZero => "rho_zero",
            BreakdownReason::OmegaZero => "omega_zero",
            BreakdownReason::RhatVZero => "rhat_v_zero",
            BreakdownReason::PapZero => "pap_zero",
            BreakdownReason::NonFinite => "non_finite",
            BreakdownReason::Stagnation => "stagnation",
            BreakdownReason::Injected => "injected",
            BreakdownReason::MaxIters => "max_iters",
        }
    }

    /// All reasons, in a stable order (dense metric enumeration).
    pub fn all() -> [BreakdownReason; 8] {
        [
            BreakdownReason::RhoZero,
            BreakdownReason::OmegaZero,
            BreakdownReason::RhatVZero,
            BreakdownReason::PapZero,
            BreakdownReason::NonFinite,
            BreakdownReason::Stagnation,
            BreakdownReason::Injected,
            BreakdownReason::MaxIters,
        ]
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iters: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Final relative residual norm (from the recurrence).
    pub relres: f64,
    /// Number of global reduction operations issued — the quantity V2D's
    /// restructuring minimizes (ablation A3 measures it).
    pub reductions: usize,
    /// Why the solve stopped short, when it did (`None` on success).
    pub breakdown: Option<BreakdownReason>,
    /// Recovery actions that contributed to this result: in-solver
    /// true-residual restarts, plus one per exhausted solver when the
    /// result comes from [`solve_cascade`]'s fallback chain.
    pub recoveries: u32,
}

/// Which solver of the fallback cascade produced an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    BicgStab,
    Gmres,
    Cg,
}

impl SolverKind {
    /// Stable lower-snake label (metric-name component, trace attribute).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::BicgStab => "bicgstab",
            SolverKind::Gmres => "gmres",
            SolverKind::Cg => "cg",
        }
    }
}

/// One exhausted attempt of the [`solve_cascade`] chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveAttempt {
    pub solver: SolverKind,
    pub stats: SolveStats,
}

/// Every solver of the cascade failed.  Carries the per-solver stats so
/// the caller can see *how* each one died (and report it).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveError {
    pub attempts: Vec<SolveAttempt>,
    /// Set when the cascade aborted because the communicator itself
    /// failed (lockstep mismatch, collective/receive timeout, peer
    /// death).  A poisoned communicator cannot run the remaining
    /// fallbacks — retrying locally would desynchronize further — so
    /// the caller must treat the whole step as lost.
    pub comm: Option<CommError>,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(ce) = &self.comm {
            write!(f, "solve aborted on a communicator fault: {ce}")?;
            if !self.attempts.is_empty() {
                write!(f, "; prior attempts:")?;
            }
        } else {
            write!(f, "all solvers failed:")?;
        }
        for at in &self.attempts {
            write!(
                f,
                " [{:?}: {:?} after {} iters, relres {:.3e}]",
                at.solver,
                at.stats.breakdown.unwrap_or(BreakdownReason::MaxIters),
                at.stats.iters,
                at.stats.relres
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.comm.as_ref().map(|ce| ce as &(dyn std::error::Error + 'static))
    }
}

/// Helper: one global sum of a slice of ganged partial inner products,
/// through the lockstep-verified fallible surface: a desynchronized or
/// abandoned collective comes back as a typed [`CommError`] the step
/// driver can turn into a recovery decision instead of a hang.
fn reduce(
    comm: &Comm,
    cx: &mut ExecCtx,
    partials: &mut [f64],
    count: &mut usize,
) -> Result<(), CommError> {
    comm.try_allreduce(cx, coll_site::SOLVER_REDUCE, ReduceOp::Sum, partials)?;
    *count += 1;
    Ok(())
}

/// Preconditioned BiCGSTAB: solve `A x = b`, starting from the `x`
/// passed in, overwriting it with the solution.  Scratch comes from
/// `wks`; the ambient working set of `cx` is scoped to the operator's
/// for the duration of the solve.
#[allow(clippy::too_many_arguments)] // mirrors the cg/gmres signature
pub fn bicgstab<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    let (n1, n2) = a.tile_dims();
    wks.ensure(n1, n2);
    let old_ws = cx.set_ws(a.working_set());
    let stats = bicgstab_inner(comm, cx, a, m, b, x, wks, opts);
    cx.set_ws(old_ws);
    stats
}

#[allow(clippy::too_many_arguments)] // the public signature, minus sugar
fn bicgstab_inner<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    let mut reductions = 0usize;
    let mut recoveries = 0u32;
    let mut restarts_left = opts.max_restarts;
    // Disjoint borrows of the workspace's scratch suite.
    let SolverWorkspace { r, rhat, p, v, s, t, phat, shat, .. } = wks;

    // r = b − A·x, computed in place: r holds A·x, then b − A·x.
    a.apply(comm, cx, x, r);
    kernels::residual_into(cx, b, r);
    rhat.copy_from(r);

    // Initial gang: {‖r‖², ‖b‖²}.
    let mut gang = [kernels::norm2_local(cx, r), kernels::norm2_local(cx, b)];
    reduce(comm, cx, &mut gang, &mut reductions)?;
    let bnorm = gang[1].sqrt();
    if !gang[0].is_finite() || !bnorm.is_finite() {
        return Ok(SolveStats {
            iters: 0,
            converged: false,
            relres: f64::NAN,
            reductions,
            breakdown: Some(BreakdownReason::NonFinite),
            recoveries,
        });
    }
    if bnorm == 0.0 {
        // Homogeneous system: the solution is x = 0.
        x.zero();
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: 0.0,
            reductions,
            breakdown: None,
            recoveries,
        });
    }
    let mut rr = gang[0];
    if rr.sqrt() <= opts.tol * bnorm {
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: rr.sqrt() / bnorm,
            reductions,
            breakdown: None,
            recoveries,
        });
    }

    // ρ is *carried* between iterations when the variant supplies it
    // algebraically (Ganged) and recomputed with a dedicated reduction
    // when it does not (Classic, where the carry is `None`).  Starting
    // carry: ⟨r̂, r⟩ = ‖r‖², since r̂ = r.
    let mut rho_carry: Option<f64> = Some(gang[0]);
    let mut rho_prev = gang[0];
    let mut alpha: f64 = 1.0;
    let mut omega: f64 = 1.0;
    // `fresh` marks the first direction update after an (re)start: the
    // search direction is seeded from r rather than β-recurred.
    let mut fresh = true;
    let mut best_rr = rr;
    let mut since_best = 0usize;
    let tiny = 1e-290;

    let mut iter = 0usize;
    while iter < opts.max_iters {
        iter += 1;
        let mut rho = match rho_carry.take() {
            Some(carried) => carried,
            None => {
                // The classic form recomputes ρ = ⟨r̂, r⟩ with its own
                // reduction; the ganged form derived it algebraically
                // from last iteration's five-way gang.
                let mut g = [kernels::dprod_local(cx, rhat, r)];
                reduce(comm, cx, &mut g, &mut reductions)?;
                g[0]
            }
        };
        // Scheduled fault injection: force the classic ρ → 0 breakdown.
        // The plan is shared by every rank, so all ranks break (and
        // restart) collectively — no reduction-schedule desync.
        if let Some(inj) = cx.faults() {
            if inj.poll_solver_breakdown() {
                inj.note(format!("bicgstab iter {iter}: forced rho -> 0 breakdown"));
                rho = 0.0;
            }
        }
        if !rho.is_finite() || !omega.is_finite() || !rr.is_finite() {
            return Ok(SolveStats {
                iters: iter - 1,
                converged: false,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: Some(BreakdownReason::NonFinite),
                recoveries,
            });
        }
        let why = if rho.abs() < tiny {
            Some(BreakdownReason::RhoZero)
        } else if omega.abs() < tiny {
            Some(BreakdownReason::OmegaZero)
        } else if since_best >= opts.stall_window {
            Some(BreakdownReason::Stagnation)
        } else {
            None
        };
        if let Some(why) = why {
            if restarts_left == 0 {
                return Ok(SolveStats {
                    iters: iter - 1,
                    converged: false,
                    relres: rr.sqrt() / bnorm,
                    reductions,
                    breakdown: Some(why),
                    recoveries,
                });
            }
            // True-residual restart: recompute r = b − A·x from the
            // current iterate, reseed r̂ = r, and restart the recurrence.
            // The breakdown verdict came from globally-reduced scalars,
            // so every rank takes this branch together.
            restarts_left -= 1;
            recoveries += 1;
            a.apply(comm, cx, x, r);
            kernels::residual_into(cx, b, r);
            rhat.copy_from(r);
            let mut g = [kernels::norm2_local(cx, r)];
            reduce(comm, cx, &mut g, &mut reductions)?;
            rr = g[0];
            if !rr.is_finite() {
                return Ok(SolveStats {
                    iters: iter,
                    converged: false,
                    relres: f64::NAN,
                    reductions,
                    breakdown: Some(BreakdownReason::NonFinite),
                    recoveries,
                });
            }
            if let Some(inj) = cx.faults() {
                inj.note(format!(
                    "bicgstab iter {iter}: {why:?} breakdown, true-residual restart \
                     (relres {:.3e})",
                    rr.sqrt() / bnorm
                ));
            }
            cx.trace_instant(
                "solver_restart",
                &[
                    ("solver", AttrVal::Str("bicgstab")),
                    ("reason", AttrVal::Str(why.name())),
                    ("iter", AttrVal::U64(iter as u64)),
                    ("relres", AttrVal::F64(rr.sqrt() / bnorm)),
                ],
            );
            if rr.sqrt() <= opts.tol * bnorm {
                return Ok(SolveStats {
                    iters: iter,
                    converged: true,
                    relres: rr.sqrt() / bnorm,
                    reductions,
                    breakdown: None,
                    recoveries,
                });
            }
            rho_carry = Some(rr);
            rho_prev = rr;
            alpha = 1.0;
            omega = 1.0;
            fresh = true;
            best_rr = rr;
            since_best = 0;
            continue;
        }
        if fresh {
            p.copy_from(r);
            fresh = false;
        } else {
            let beta = (rho / rho_prev) * (alpha / omega);
            kernels::p_update(cx, beta, omega, r, v, p);
        }

        m.apply(comm, cx, p, phat);
        a.apply(comm, cx, phat, v);
        let mut g = [kernels::dprod_local(cx, rhat, v)];
        reduce(comm, cx, &mut g, &mut reductions)?;
        let rv = g[0];
        if !rv.is_finite() {
            return Ok(SolveStats {
                iters: iter,
                converged: false,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: Some(BreakdownReason::NonFinite),
                recoveries,
            });
        }
        if rv.abs() < tiny {
            return Ok(SolveStats {
                iters: iter,
                converged: false,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: Some(BreakdownReason::RhatVZero),
                recoveries,
            });
        }
        alpha = rho / rv;
        kernels::xmay(cx, r, alpha, v, s); // s = r − α·v

        m.apply(comm, cx, s, shat);
        a.apply(comm, cx, shat, t);

        let ts;
        let tt;
        let rho_next: Option<f64>;
        match opts.variant {
            BicgVariant::Ganged => {
                // One five-way gang closes the iteration.
                let mut g = [
                    kernels::dprod_local(cx, t, s),
                    kernels::norm2_local(cx, t),
                    kernels::norm2_local(cx, s),
                    kernels::dprod_local(cx, rhat, s),
                    kernels::dprod_local(cx, rhat, t),
                ];
                reduce(comm, cx, &mut g, &mut reductions)?;
                let [g_ts, g_tt, g_ss, g_rs, g_rt] = g;
                ts = g_ts;
                tt = g_tt;
                if tt < tiny {
                    // t ≈ 0: converged iff s ≈ 0.
                    kernels::daxpy(cx, alpha, phat, x);
                    let conv = g_ss.sqrt() <= opts.tol * bnorm;
                    return Ok(SolveStats {
                        iters: iter,
                        converged: conv,
                        relres: g_ss.sqrt() / bnorm,
                        reductions,
                        breakdown: if conv { None } else { Some(BreakdownReason::OmegaZero) },
                        recoveries,
                    });
                }
                omega = ts / tt;
                // ‖r‖² and next ρ follow algebraically — no extra
                // reductions.
                rr = (g_ss - 2.0 * omega * ts + omega * omega * tt).max(0.0);
                rho_next = Some(g_rs - omega * g_rt);
            }
            BicgVariant::Classic => {
                let mut g1 = [kernels::dprod_local(cx, t, s)];
                reduce(comm, cx, &mut g1, &mut reductions)?;
                let mut g2 = [kernels::norm2_local(cx, t)];
                reduce(comm, cx, &mut g2, &mut reductions)?;
                ts = g1[0];
                tt = g2[0];
                if tt < tiny {
                    kernels::daxpy(cx, alpha, phat, x);
                    let mut g3 = [kernels::norm2_local(cx, s)];
                    reduce(comm, cx, &mut g3, &mut reductions)?;
                    let conv = g3[0].sqrt() <= opts.tol * bnorm;
                    return Ok(SolveStats {
                        iters: iter,
                        converged: conv,
                        relres: g3[0].sqrt() / bnorm,
                        reductions,
                        breakdown: if conv { None } else { Some(BreakdownReason::OmegaZero) },
                        recoveries,
                    });
                }
                omega = ts / tt;
                rho_next = None; // recomputed at the next loop top
            }
        }

        // x ← x + α·p̂ + ω·ŝ  (V2D's combined scaling/addition routine)
        kernels::ddaxpy(cx, alpha, phat, omega, shat, x);
        // r ← s − ω·t
        kernels::xmay(cx, s, omega, t, r);

        if opts.variant == BicgVariant::Classic {
            let mut g = [kernels::norm2_local(cx, r)];
            reduce(comm, cx, &mut g, &mut reductions)?;
            rr = g[0];
        }
        cx.trace_instant(
            "bicgstab_iter",
            &[("iter", AttrVal::U64(iter as u64)), ("relres", AttrVal::F64(rr.sqrt() / bnorm))],
        );
        if rr.sqrt() <= opts.tol * bnorm {
            return Ok(SolveStats {
                iters: iter,
                converged: true,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: None,
                recoveries,
            });
        }
        // Stagnation watch: count iterations since the recurrence last
        // set a new best residual norm (host-side — no kernel cost).
        if rr < best_rr {
            best_rr = rr;
            since_best = 0;
        } else {
            since_best += 1;
        }
        rho_prev = rho;
        rho_carry = rho_next;
    }
    Ok(SolveStats {
        iters: opts.max_iters,
        converged: false,
        relres: rr.sqrt() / bnorm,
        reductions,
        breakdown: Some(BreakdownReason::MaxIters),
        recoveries,
    })
}

/// Preconditioned conjugate gradient for symmetric positive-definite
/// systems — the method BiCGSTAB extends (paper §II-A); used as the
/// baseline in the preconditioner ablation.
#[allow(clippy::too_many_arguments)] // mirrors the bicgstab/gmres signature
pub fn cg<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    let (n1, n2) = a.tile_dims();
    wks.ensure(n1, n2);
    let old_ws = cx.set_ws(a.working_set());
    let stats = cg_inner(comm, cx, a, m, b, x, wks, opts);
    cx.set_ws(old_ws);
    stats
}

#[allow(clippy::too_many_arguments)]
fn cg_inner<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    let mut reductions = 0usize;
    // Scheduled fault injection: fail this attempt before any collective
    // work begins (every rank shares the plan, so all fail together).
    if let Some(inj) = cx.faults() {
        if inj.poll_solver_breakdown() {
            inj.note("cg: forced breakdown (injected)".to_string());
            return Ok(SolveStats {
                iters: 0,
                converged: false,
                relres: f64::NAN,
                reductions,
                breakdown: Some(BreakdownReason::Injected),
                recoveries: 0,
            });
        }
    }
    // CG's suite aliases the BiCGSTAB field names: z lives in `rhat`,
    // A·p in `v`.
    let SolverWorkspace { r, rhat: z, p, v: ap, .. } = wks;

    a.apply(comm, cx, x, r);
    kernels::residual_into(cx, b, r);

    let mut gang = [kernels::norm2_local(cx, r), kernels::norm2_local(cx, b)];
    reduce(comm, cx, &mut gang, &mut reductions)?;
    let bnorm = gang[1].sqrt();
    if !gang[0].is_finite() || !bnorm.is_finite() {
        return Ok(SolveStats {
            iters: 0,
            converged: false,
            relres: f64::NAN,
            reductions,
            breakdown: Some(BreakdownReason::NonFinite),
            recoveries: 0,
        });
    }
    if bnorm == 0.0 {
        x.zero();
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: 0.0,
            reductions,
            breakdown: None,
            recoveries: 0,
        });
    }
    let mut rr = gang[0];
    if rr.sqrt() <= opts.tol * bnorm {
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: rr.sqrt() / bnorm,
            reductions,
            breakdown: None,
            recoveries: 0,
        });
    }

    m.apply(comm, cx, r, z);
    p.copy_from(z);
    let mut gang = [kernels::dprod_local(cx, r, z)];
    reduce(comm, cx, &mut gang, &mut reductions)?;
    let mut rz = gang[0];

    for iter in 1..=opts.max_iters {
        a.apply(comm, cx, p, ap);
        let mut gang = [kernels::dprod_local(cx, p, ap)];
        reduce(comm, cx, &mut gang, &mut reductions)?;
        let pap = gang[0];
        if !pap.is_finite() {
            return Ok(SolveStats {
                iters: iter,
                converged: false,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: Some(BreakdownReason::NonFinite),
                recoveries: 0,
            });
        }
        if pap.abs() < 1e-290 {
            return Ok(SolveStats {
                iters: iter,
                converged: false,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: Some(BreakdownReason::PapZero),
                recoveries: 0,
            });
        }
        let alpha = rz / pap;
        kernels::daxpy(cx, alpha, p, x);
        kernels::daxpy(cx, -alpha, ap, r);
        m.apply(comm, cx, r, z);
        // Gang {⟨r,z⟩, ⟨r,r⟩} into one reduction.
        let mut gang = [kernels::dprod_local(cx, r, z), kernels::norm2_local(cx, r)];
        reduce(comm, cx, &mut gang, &mut reductions)?;
        let rz_new = gang[0];
        rr = gang[1];
        if !rr.is_finite() || !rz_new.is_finite() {
            return Ok(SolveStats {
                iters: iter,
                converged: false,
                relres: f64::NAN,
                reductions,
                breakdown: Some(BreakdownReason::NonFinite),
                recoveries: 0,
            });
        }
        if rr.sqrt() <= opts.tol * bnorm {
            return Ok(SolveStats {
                iters: iter,
                converged: true,
                relres: rr.sqrt() / bnorm,
                reductions,
                breakdown: None,
                recoveries: 0,
            });
        }
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + β·p
        kernels::p_update(cx, beta, 0.0, z, ap, p);
    }
    Ok(SolveStats {
        iters: opts.max_iters,
        converged: false,
        relres: rr.sqrt() / bnorm,
        reductions,
        breakdown: Some(BreakdownReason::MaxIters),
        recoveries: 0,
    })
}

/// Restarted GMRES(m) with right preconditioning — the other Krylov
/// family compared for these systems by Swesty, Smolarski & Saylor
/// (2004), the paper's ref [7].
///
/// Each Arnoldi step orthogonalizes against the whole basis with
/// modified Gram–Schmidt, costing one global reduction *per basis
/// vector* — the communication-hungry behaviour that made the ganged
/// BiCGSTAB attractive for V2D.  The solver tracks the residual norm
/// through Givens rotations and restarts every `m` steps.  The Arnoldi
/// basis draws from the workspace's vector pool, so restarts and
/// repeated solves reuse the same storage.
#[allow(clippy::too_many_arguments)] // mirrors the bicgstab/cg signature + restart length
pub fn gmres<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    restart: usize,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    assert!(restart >= 1, "GMRES restart length must be ≥ 1");
    let (n1, n2) = a.tile_dims();
    wks.ensure(n1, n2);
    wks.ensure_basis(restart + 1);
    let old_ws = cx.set_ws(a.working_set());
    let stats = gmres_inner(comm, cx, a, m, b, x, wks, restart, opts);
    cx.set_ws(old_ws);
    stats
}

#[allow(clippy::too_many_arguments)]
fn gmres_inner<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    restart: usize,
    opts: &SolveOpts,
) -> Result<SolveStats, CommError> {
    let mut reductions = 0usize;
    // Scheduled fault injection: fail this attempt before any collective
    // work begins (every rank shares the plan, so all fail together).
    if let Some(inj) = cx.faults() {
        if inj.poll_solver_breakdown() {
            inj.note("gmres: forced breakdown (injected)".to_string());
            return Ok(SolveStats {
                iters: 0,
                converged: false,
                relres: f64::NAN,
                reductions,
                breakdown: Some(BreakdownReason::Injected),
                recoveries: 0,
            });
        }
    }
    // GMRES aliases: w ↦ `s`, M⁻¹-image ↦ `shat`, solution update
    // accumulator ↦ `t`, Arnoldi basis ↦ the `basis` pool.
    let SolverWorkspace { r, s: w, t: update, shat: zhat, basis, .. } = wks;

    a.apply(comm, cx, x, r);
    kernels::residual_into(cx, b, r);

    let mut gang = [kernels::norm2_local(cx, r), kernels::norm2_local(cx, b)];
    reduce(comm, cx, &mut gang, &mut reductions)?;
    let bnorm = gang[1].sqrt();
    if !gang[0].is_finite() || !bnorm.is_finite() {
        return Ok(SolveStats {
            iters: 0,
            converged: false,
            relres: f64::NAN,
            reductions,
            breakdown: Some(BreakdownReason::NonFinite),
            recoveries: 0,
        });
    }
    if bnorm == 0.0 {
        x.zero();
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: 0.0,
            reductions,
            breakdown: None,
            recoveries: 0,
        });
    }
    let mut beta = gang[0].sqrt();
    if beta <= opts.tol * bnorm {
        return Ok(SolveStats {
            iters: 0,
            converged: true,
            relres: beta / bnorm,
            reductions,
            breakdown: None,
            recoveries: 0,
        });
    }

    // Hessenberg and rotation storage (small host vectors).
    let mut h = vec![vec![0.0f64; restart]; restart + 1];
    let mut cs = vec![0.0f64; restart];
    let mut sn = vec![0.0f64; restart];
    let mut g = vec![0.0f64; restart + 1];

    let mut total_iters = 0usize;
    let max_outer = opts.max_iters.div_ceil(restart).max(1);

    for _outer in 0..max_outer {
        // v0 = r / β
        kernels::copy(cx, r, &mut basis[0]);
        kernels::dscal(cx, 0.0, -1.0 / beta, &mut basis[0]); // v0 = r/β via c − d·y
        let mut nb = 1; // valid basis vectors
        for gi in g.iter_mut() {
            *gi = 0.0;
        }
        g[0] = beta;

        let mut k_used = 0;
        let mut converged = false;
        for k in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            k_used = k + 1;

            // w = A·M⁻¹·v_k (the preconditioner may refresh v_k's ghost
            // frame; its interior — all the basis arithmetic reads — is
            // untouched).
            m.apply(comm, cx, &mut basis[k], zhat);
            a.apply(comm, cx, zhat, w);

            // Modified Gram–Schmidt: one reduction per basis vector.
            for (j, vj) in basis.iter().take(nb).enumerate() {
                let mut dot = [kernels::dprod_local(cx, w, vj)];
                reduce(comm, cx, &mut dot, &mut reductions)?;
                h[j][k] = dot[0];
                kernels::daxpy(cx, -dot[0], vj, w);
            }
            let mut nrm = [kernels::norm2_local(cx, w)];
            reduce(comm, cx, &mut nrm, &mut reductions)?;
            let hk1 = nrm[0].sqrt();
            if !hk1.is_finite() {
                return Ok(SolveStats {
                    iters: total_iters,
                    converged: false,
                    relres: f64::NAN,
                    reductions,
                    breakdown: Some(BreakdownReason::NonFinite),
                    recoveries: 0,
                });
            }
            h[k + 1][k] = hk1;

            // Apply accumulated Givens rotations to the new column.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt();
            if denom < 1e-290 {
                // Lucky breakdown: exact solution within the subspace.
                cs[k] = 1.0;
                sn[k] = 0.0;
            } else {
                cs[k] = h[k][k] / denom;
                sn[k] = hk1 / denom;
            }
            h[k][k] = cs[k] * h[k][k] + sn[k] * hk1;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];

            let relres = g[k + 1].abs() / bnorm;
            if hk1 >= 1e-290 {
                let (head, tail) = basis.split_at_mut(k + 1);
                let vk1 = &mut tail[0];
                kernels::copy(cx, w, vk1);
                kernels::dscal(cx, 0.0, -1.0 / hk1, vk1);
                let _ = head;
                nb = k + 2;
            }
            if relres <= opts.tol || hk1 < 1e-290 {
                converged = true;
                break;
            }
        }

        if k_used > 0 {
            // Solve the small triangular system and update x += M⁻¹·V·y.
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut v = g[i];
                for j in i + 1..k_used {
                    v -= h[i][j] * y[j];
                }
                y[i] = v / h[i][i];
            }
            // The accumulator is pooled scratch: zero it before use.
            update.zero();
            for (j, &yj) in y.iter().enumerate() {
                kernels::daxpy(cx, yj, &basis[j], update);
            }
            m.apply(comm, cx, update, zhat);
            kernels::daxpy(cx, 1.0, zhat, x);
        }

        // True residual for the restart (and the convergence report).
        a.apply(comm, cx, x, r);
        kernels::residual_into(cx, b, r);
        let mut nrm = [kernels::norm2_local(cx, r)];
        reduce(comm, cx, &mut nrm, &mut reductions)?;
        beta = nrm[0].sqrt();
        if !beta.is_finite() {
            return Ok(SolveStats {
                iters: total_iters,
                converged: false,
                relres: f64::NAN,
                reductions,
                breakdown: Some(BreakdownReason::NonFinite),
                recoveries: 0,
            });
        }
        if converged || beta <= opts.tol * bnorm {
            let conv = beta <= opts.tol * bnorm * 10.0;
            return Ok(SolveStats {
                iters: total_iters,
                converged: conv,
                relres: beta / bnorm,
                reductions,
                breakdown: if conv { None } else { Some(BreakdownReason::Stagnation) },
                recoveries: 0,
            });
        }
        if total_iters >= opts.max_iters {
            break;
        }
    }
    Ok(SolveStats {
        iters: total_iters,
        converged: false,
        relres: beta / bnorm,
        reductions,
        breakdown: Some(BreakdownReason::MaxIters),
        recoveries: 0,
    })
}

/// Restart length used by the cascade's GMRES fallback.
const CASCADE_GMRES_RESTART: usize = 30;

/// Fallback cascade: BiCGSTAB → restarted GMRES(30) → CG.
///
/// Each fallback restarts from the iterate the caller passed in (saved
/// in the workspace's `x0` slot), not from whatever state the failed
/// solver left behind.  On success the returned stats carry the winning
/// solver's numbers plus one recovery per exhausted predecessor; on
/// total failure `x` is restored to the entry iterate and the error
/// records how every attempt died.
#[allow(clippy::too_many_arguments)] // mirrors the solver signatures
pub fn solve_cascade<A: LinearOp, M: Preconditioner>(
    comm: &Comm,
    cx: &mut ExecCtx,
    a: &mut A,
    m: &mut M,
    b: &TileVec,
    x: &mut TileVec,
    wks: &mut SolverWorkspace,
    opts: &SolveOpts,
) -> Result<SolveStats, SolveError> {
    let (n1, n2) = a.tile_dims();
    wks.ensure(n1, n2);
    wks.x0.copy_from(x);
    let mut attempts = Vec::new();
    // A communicator fault aborts the cascade outright: the collectives
    // are sticky-poisoned (or a peer is gone), so the remaining
    // fallbacks could never complete a reduction.  Restore the entry
    // iterate and surface the typed verdict.
    macro_rules! run {
        ($call:expr) => {
            match $call {
                Ok(st) => st,
                Err(ce) => {
                    x.copy_from(&wks.x0);
                    return Err(SolveError { attempts, comm: Some(ce) });
                }
            }
        };
    }

    let st = run!(bicgstab(comm, cx, a, m, b, x, wks, opts));
    if st.converged {
        return Ok(st);
    }
    attempts.push(SolveAttempt { solver: SolverKind::BicgStab, stats: st });
    if let Some(inj) = cx.faults() {
        inj.note(format!(
            "bicgstab failed ({:?}); falling back to GMRES({CASCADE_GMRES_RESTART})",
            st.breakdown
        ));
    }
    trace_fallback(cx, SolverKind::BicgStab, &st);

    x.copy_from(&wks.x0);
    let st = run!(gmres(comm, cx, a, m, b, x, wks, CASCADE_GMRES_RESTART, opts));
    if st.converged {
        return Ok(SolveStats { recoveries: st.recoveries + attempts.len() as u32, ..st });
    }
    attempts.push(SolveAttempt { solver: SolverKind::Gmres, stats: st });
    if let Some(inj) = cx.faults() {
        inj.note(format!("gmres failed ({:?}); falling back to CG", st.breakdown));
    }
    trace_fallback(cx, SolverKind::Gmres, &st);

    x.copy_from(&wks.x0);
    let st = run!(cg(comm, cx, a, m, b, x, wks, opts));
    if st.converged {
        return Ok(SolveStats { recoveries: st.recoveries + attempts.len() as u32, ..st });
    }
    attempts.push(SolveAttempt { solver: SolverKind::Cg, stats: st });
    trace_fallback(cx, SolverKind::Cg, &st);

    // Leave the caller's iterate exactly as it came in, so a higher-level
    // retry (smaller dt, restored checkpoint) starts from clean state.
    x.copy_from(&wks.x0);
    Err(SolveError { attempts, comm: None })
}

/// Stamp one exhausted cascade attempt on the tracer.
fn trace_fallback(cx: &mut ExecCtx, solver: SolverKind, st: &SolveStats) {
    cx.trace_instant(
        "solver_fallback",
        &[
            ("solver", AttrVal::Str(solver.name())),
            ("reason", AttrVal::Str(st.breakdown.unwrap_or(BreakdownReason::MaxIters).name())),
            ("iters", AttrVal::U64(st.iters as u64)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{assemble_dense, StencilCoeffs, StencilOp};
    use crate::precond::{BlockJacobi, Identity, Jacobi, Spai};
    use v2d_comm::{CartComm, Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    /// Dense LU with partial pivoting — the oracle.
    #[allow(clippy::needless_range_loop)]
    fn lu_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
        let n = b.len();
        for col in 0..n {
            let piv =
                (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs())).unwrap();
            a.swap(col, piv);
            b.swap(col, piv);
            for row in col + 1..n {
                let f = a[row][col] / a[col][col];
                for k in col..n {
                    a[row][k] -= f * a[col][k];
                }
                b[row] -= f * b[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut v = b[row];
            for k in row + 1..n {
                v -= a[row][k] * x[k];
            }
            x[row] = v / a[row][row];
        }
        x
    }

    fn rhs_field(n1: usize, n2: usize, g1: usize, g2: usize) -> TileVec {
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| {
            (((g1 + i1) * 3 + (g2 + i2) * 5 + s * 17) as f64 * 0.119).sin() + 0.2
        });
        b
    }

    #[test]
    fn bicgstab_matches_dense_oracle() {
        let (n1, n2) = (6, 5);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let a = assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let b = rhs_field(n1, n2, 0, 0);
            let expect = lu_solve(a, b.interior_to_vec());

            let mut x = TileVec::new(n1, n2);
            let mut m = Identity;
            let mut wks = SolverWorkspace::new(n1, n2);
            let stats = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &SolveOpts { tol: 1e-12, ..Default::default() },
            )
            .unwrap();
            assert!(stats.converged, "did not converge: {stats:?}");
            for (g, e) in x.interior_to_vec().iter().zip(&expect) {
                assert!((g - e).abs() < 1e-8, "{g} vs {e}");
            }
        });
    }

    #[test]
    fn classic_and_ganged_agree() {
        let (n1, n2) = (10, 8);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let b = rhs_field(n1, n2, 0, 0);
            let run = |variant, ctx: &mut v2d_comm::RankCtx| {
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                let mut m = Identity;
                let mut x = TileVec::new(n1, n2);
                let mut wks = SolverWorkspace::new(n1, n2);
                let stats = bicgstab(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    &mut wks,
                    &SolveOpts { tol: 1e-11, variant, ..Default::default() },
                )
                .unwrap();
                (x.interior_to_vec(), stats)
            };
            let (xc, sc) = run(BicgVariant::Classic, ctx);
            let (xg, sg) = run(BicgVariant::Ganged, ctx);
            assert!(sc.converged && sg.converged);
            for (a, b) in xc.iter().zip(&xg) {
                assert!((a - b).abs() < 1e-7, "classic {a} vs ganged {b}");
            }
            // The restructuring's whole purpose: far fewer reductions.
            assert!(
                sg.reductions <= 2 * sg.iters + 2,
                "ganged issued {} reductions over {} iters",
                sg.reductions,
                sg.iters
            );
            assert!(sc.reductions >= 4 * sc.iters, "classic should reduce ~5×/iter");
        });
    }

    #[test]
    fn dirty_workspace_reproduces_fresh_iterates_bitwise() {
        // Workspace reuse must be invisible: a solve into a workspace
        // dirtied by a *different* previous solve must produce the same
        // bits (solution and stats) as one into a fresh workspace.
        let (n1, n2) = (12, 9);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let b = rhs_field(n1, n2, 0, 0);
            let opts = SolveOpts { tol: 1e-11, ..Default::default() };

            let solve_bicg = |wks: &mut SolverWorkspace, ctx: &mut v2d_comm::RankCtx| {
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                let mut m = Identity;
                let mut x = TileVec::new(n1, n2);
                let stats = bicgstab(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    wks,
                    &opts,
                )
                .unwrap();
                (x.interior_to_vec(), stats)
            };
            let solve_cg = |wks: &mut SolverWorkspace, ctx: &mut v2d_comm::RankCtx| {
                let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
                let mut m = Jacobi::new(&op);
                let mut x = TileVec::new(n1, n2);
                let stats = cg(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    wks,
                    &opts,
                )
                .unwrap();
                (x.interior_to_vec(), stats)
            };
            let solve_gmres = |wks: &mut SolverWorkspace, ctx: &mut v2d_comm::RankCtx| {
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                let mut m = Identity;
                let mut x = TileVec::new(n1, n2);
                let stats = gmres(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    wks,
                    7,
                    &opts,
                )
                .unwrap();
                (x.interior_to_vec(), stats)
            };

            // Fresh-workspace references.
            let (x_bi, s_bi) = solve_bicg(&mut SolverWorkspace::new(n1, n2), ctx);
            let (x_cg, s_cg) = solve_cg(&mut SolverWorkspace::new(n1, n2), ctx);
            let (x_gm, s_gm) = solve_gmres(&mut SolverWorkspace::new(n1, n2), ctx);
            assert!(s_bi.converged && s_cg.converged && s_gm.converged);

            // One shared workspace, dirtied by each solver in turn and
            // handed to the next — every result must be bit-identical
            // to its fresh-workspace reference.
            let mut wks = SolverWorkspace::new(n1, n2);
            for _round in 0..2 {
                let (x2, s2) = solve_gmres(&mut wks, ctx);
                assert_eq!(s2, s_gm);
                assert!(x2.iter().zip(&x_gm).all(|(a, b)| a.to_bits() == b.to_bits()));
                let (x2, s2) = solve_bicg(&mut wks, ctx);
                assert_eq!(s2, s_bi);
                assert!(x2.iter().zip(&x_bi).all(|(a, b)| a.to_bits() == b.to_bits()));
                let (x2, s2) = solve_cg(&mut wks, ctx);
                assert_eq!(s2, s_cg);
                assert!(x2.iter().zip(&x_cg).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        });
    }

    #[test]
    fn multirank_solution_matches_single_rank() {
        let (n1, n2) = (16, 12);
        let solve_with = |np1: usize, np2: usize| {
            let map = TileMap::new(n1, n2, np1, np2);
            let outs = Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let t = cart.tile();
                let mut op = StencilOp::new(
                    StencilCoeffs::manufactured(t.n1, t.n2, t.i1_start, t.i2_start),
                    cart,
                );
                op.exchange_coeff_halos(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                let mut m = Spai::new(&op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                let b = rhs_field(t.n1, t.n2, t.i1_start, t.i2_start);
                let mut x = TileVec::new(t.n1, t.n2);
                let mut wks = SolverWorkspace::new(t.n1, t.n2);
                let stats = bicgstab(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    &mut wks,
                    &SolveOpts { tol: 1e-11, ..Default::default() },
                )
                .unwrap();
                assert!(stats.converged);
                let mut out = Vec::new();
                for s in 0..crate::NSPEC {
                    for i2 in 0..t.n2 {
                        for i1 in 0..t.n1 {
                            out.push((
                                (s, t.i1_start + i1, t.i2_start + i2),
                                x.get(s, i1 as isize, i2 as isize),
                            ));
                        }
                    }
                }
                out
            });
            let mut all: Vec<_> = outs.into_iter().flatten().collect();
            all.sort_by_key(|&((s, g1, g2), _)| (s, g2, g1));
            all.into_iter().map(|(_, v)| v).collect::<Vec<f64>>()
        };
        let single = solve_with(1, 1);
        for (np1, np2) in [(2, 2), (4, 3)] {
            let multi = solve_with(np1, np2);
            for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
                assert!(
                    (a - b).abs() < 1e-7,
                    "solution differs at {i}: {a} vs {b} for {np1}x{np2}"
                );
            }
        }
    }

    #[test]
    fn preconditioners_cut_iterations() {
        let (n1, n2) = (24, 20);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let b = rhs_field(n1, n2, 0, 0);
            let opts = SolveOpts { tol: 1e-10, ..Default::default() };
            let iters_with = |name: &str, ctx: &mut v2d_comm::RankCtx| -> usize {
                let cart = CartComm::new(&ctx.comm, map);
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                op.exchange_coeff_halos(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                let mut x = TileVec::new(n1, n2);
                let mut wks = SolverWorkspace::new(n1, n2);
                let stats = match name {
                    "identity" => {
                        let mut m = Identity;
                        bicgstab(
                            &ctx.comm,
                            &mut ExecCtx::new(&mut ctx.sink),
                            &mut op,
                            &mut m,
                            &b,
                            &mut x,
                            &mut wks,
                            &opts,
                        )
                        .unwrap()
                    }
                    "jacobi" => {
                        let mut m = Jacobi::new(&op);
                        bicgstab(
                            &ctx.comm,
                            &mut ExecCtx::new(&mut ctx.sink),
                            &mut op,
                            &mut m,
                            &b,
                            &mut x,
                            &mut wks,
                            &opts,
                        )
                        .unwrap()
                    }
                    "block" => {
                        let mut m = BlockJacobi::new(&op);
                        bicgstab(
                            &ctx.comm,
                            &mut ExecCtx::new(&mut ctx.sink),
                            &mut op,
                            &mut m,
                            &b,
                            &mut x,
                            &mut wks,
                            &opts,
                        )
                        .unwrap()
                    }
                    _ => {
                        let mut m = Spai::new(&op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                        bicgstab(
                            &ctx.comm,
                            &mut ExecCtx::new(&mut ctx.sink),
                            &mut op,
                            &mut m,
                            &b,
                            &mut x,
                            &mut wks,
                            &opts,
                        )
                        .unwrap()
                    }
                };
                assert!(stats.converged, "{name} failed to converge");
                stats.iters
            };
            let none = iters_with("identity", ctx);
            let spai = iters_with("spai", ctx);
            assert!(spai < none, "SPAI ({spai} iters) should beat no preconditioning ({none})");
            // The cheap ones must at least not hurt badly.
            assert!(iters_with("jacobi", ctx) <= none + 2);
            assert!(iters_with("block", ctx) <= none + 2);
        });
    }

    #[test]
    fn cg_solves_spd_system_and_matches_bicgstab() {
        let (n1, n2) = (9, 7);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let b = rhs_field(n1, n2, 0, 0);
            let opts = SolveOpts { tol: 1e-11, ..Default::default() };
            let cart = CartComm::new(&ctx.comm, map);
            let mut wks = SolverWorkspace::new(n1, n2);
            let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
            let mut m = Jacobi::new(&op);
            let mut x_cg = TileVec::new(n1, n2);
            let s_cg = cg(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x_cg,
                &mut wks,
                &opts,
            )
            .unwrap();
            assert!(s_cg.converged, "CG failed: {s_cg:?}");

            let mut op2 = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
            let mut m2 = Jacobi::new(&op2);
            let mut x_bi = TileVec::new(n1, n2);
            let s_bi = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op2,
                &mut m2,
                &b,
                &mut x_bi,
                &mut wks,
                &opts,
            )
            .unwrap();
            assert!(s_bi.converged);
            for (a, c) in x_cg.interior_to_vec().iter().zip(x_bi.interior_to_vec()) {
                assert!((a - c).abs() < 1e-7, "CG {a} vs BiCGSTAB {c}");
            }
        });
    }

    #[test]
    fn gmres_matches_bicgstab_solution() {
        let (n1, n2) = (8, 7);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let b = rhs_field(n1, n2, 0, 0);
            let opts = SolveOpts { tol: 1e-11, ..Default::default() };
            let mut wks = SolverWorkspace::new(n1, n2);

            let mut op1 = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let mut m1 = Identity;
            let mut x_bi = TileVec::new(n1, n2);
            let s_bi = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op1,
                &mut m1,
                &b,
                &mut x_bi,
                &mut wks,
                &opts,
            )
            .unwrap();
            assert!(s_bi.converged);

            let mut op2 = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let mut m2 = Identity;
            let mut x_gm = TileVec::new(n1, n2);
            let s_gm = gmres(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op2,
                &mut m2,
                &b,
                &mut x_gm,
                &mut wks,
                30,
                &opts,
            )
            .unwrap();
            assert!(s_gm.converged, "GMRES failed: {s_gm:?}");
            for (a, c) in x_bi.interior_to_vec().iter().zip(x_gm.interior_to_vec()) {
                assert!((a - c).abs() < 1e-7, "BiCGSTAB {a} vs GMRES {c}");
            }
            // GMRES pays one reduction per Arnoldi basis vector — the
            // communication profile ref [7] weighed against BiCGSTAB.
            assert!(
                s_gm.reductions > 2 * s_gm.iters,
                "GMRES should reduce more than twice per iteration: {} over {}",
                s_gm.reductions,
                s_gm.iters
            );
        });
    }

    #[test]
    fn gmres_restarts_and_still_converges() {
        let (n1, n2) = (10, 10);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let b = rhs_field(n1, n2, 0, 0);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let mut m = Jacobi::new(&op);
            let mut x = TileVec::new(n1, n2);
            let mut wks = SolverWorkspace::new(n1, n2);
            // Tiny restart length forces several outer cycles.
            let stats = gmres(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                5,
                &SolveOpts { tol: 1e-10, max_iters: 500, ..Default::default() },
            )
            .unwrap();
            assert!(stats.converged, "restarted GMRES failed: {stats:?}");
            // Verify against a direct residual.
            let mut ax = TileVec::new(n1, n2);
            op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut ax);
            for (g, w) in ax.interior_to_vec().iter().zip(b.interior_to_vec()) {
                assert!((g - w).abs() < 1e-6);
            }
        });
    }

    #[test]
    fn gmres_multirank_matches_serial() {
        let (n1, n2) = (12, 8);
        let solve = |np1: usize, np2: usize| {
            let map = TileMap::new(n1, n2, np1, np2);
            let outs = Spmd::new(np1 * np2).with_profiles(profiles()).run(|ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let t = cart.tile();
                let mut op = StencilOp::new(
                    StencilCoeffs::manufactured(t.n1, t.n2, t.i1_start, t.i2_start),
                    cart,
                );
                let mut m = Identity;
                let b = rhs_field(t.n1, t.n2, t.i1_start, t.i2_start);
                let mut x = TileVec::new(t.n1, t.n2);
                let mut wks = SolverWorkspace::new(t.n1, t.n2);
                let stats = gmres(
                    &ctx.comm,
                    &mut ExecCtx::new(&mut ctx.sink),
                    &mut op,
                    &mut m,
                    &b,
                    &mut x,
                    &mut wks,
                    20,
                    &SolveOpts { tol: 1e-11, ..Default::default() },
                )
                .unwrap();
                assert!(stats.converged);
                let mut out = Vec::new();
                for s in 0..crate::NSPEC {
                    for i2 in 0..t.n2 {
                        for i1 in 0..t.n1 {
                            out.push((
                                (s, t.i1_start + i1, t.i2_start + i2),
                                x.get(s, i1 as isize, i2 as isize),
                            ));
                        }
                    }
                }
                out
            });
            let mut all: Vec<_> = outs.into_iter().flatten().collect();
            all.sort_by_key(|&((s, a, b), _)| (s, b, a));
            all.into_iter().map(|(_, v)| v).collect::<Vec<f64>>()
        };
        let single = solve(1, 1);
        let multi = solve(2, 2);
        for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
            assert!((a - b).abs() < 1e-7, "GMRES differs at {i}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let map = TileMap::new(5, 5, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(5, 5, 0, 0), cart);
            let b = TileVec::new(5, 5);
            let mut x = TileVec::new(5, 5);
            x.fill_interior(3.0); // nonzero initial guess
            let mut m = Identity;
            let mut wks = SolverWorkspace::new(5, 5);
            let stats = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &SolveOpts::default(),
            )
            .unwrap();
            assert!(stats.converged);
            assert_eq!(stats.iters, 0);
            assert!(x.interior_to_vec().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn nonzero_initial_guess_converges() {
        let (n1, n2) = (8, 8);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let a = assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let b = rhs_field(n1, n2, 0, 0);
            let expect = lu_solve(a, b.interior_to_vec());
            let mut x = TileVec::new(n1, n2);
            x.fill_with(|s, i1, i2| (s + i1 + i2) as f64 * 0.1);
            let mut m = Identity;
            let mut wks = SolverWorkspace::new(n1, n2);
            let stats = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &SolveOpts { tol: 1e-12, ..Default::default() },
            )
            .unwrap();
            assert!(stats.converged);
            for (g, e) in x.interior_to_vec().iter().zip(&expect) {
                assert!((g - e).abs() < 1e-8);
            }
        });
    }
}
