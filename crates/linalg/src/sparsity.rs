//! The sparsity pattern of the (never-stored) global matrix — the
//! paper's Fig. 1.
//!
//! With V2D's dictionary ordering (`row = i1 + n1·i2 + n1·n2·s`), each
//! species block is pentadiagonal: the main diagonal, two adjacent
//! diagonals at ±1 (x1 neighbors, absent across grid-row boundaries),
//! and two outlying diagonals at ±n1 (x2 neighbors) — "the x1 parameter
//! indicates the distance of the two outlying diagonals from the center
//! diagonal" (paper, §II-A).  The local species coupling adds two more
//! diagonals at ±n1·n2, outside the figure's 400×400 upper-left block.

/// Global matrix dimension for an `n1 × n2` grid with `nspec` species.
pub fn dimension(n1: usize, n2: usize, nspec: usize) -> usize {
    n1 * n2 * nspec
}

/// The column indices of the nonzeros in `row`, ascending.
pub fn row_nonzeros(n1: usize, n2: usize, nspec: usize, row: usize) -> Vec<usize> {
    let zones = n1 * n2;
    let n = dimension(n1, n2, nspec);
    assert!(row < n, "row {row} out of range for dimension {n}");
    let s = row / zones;
    let z = row % zones;
    let (i2, i1) = (z / n1, z % n1);
    let mut cols = Vec::with_capacity(5 + nspec - 1);
    // x2 neighbor below
    if i2 > 0 {
        cols.push(row - n1);
    }
    // x1 neighbor left (same grid row only)
    if i1 > 0 {
        cols.push(row - 1);
    }
    cols.push(row);
    if i1 + 1 < n1 {
        cols.push(row + 1);
    }
    if i2 + 1 < n2 {
        cols.push(row + n1);
    }
    // species partners (local coupling)
    for sp in 0..nspec {
        if sp != s {
            cols.push(sp * zones + z);
        }
    }
    cols.sort_unstable();
    cols
}

/// All nonzeros `(row, col)` with both indices inside
/// `[r0, r1) × [c0, c1)` — the window the paper's figure plots
/// (its Fig. 1 is the `400 × 400` upper-left block of the
/// `40 000 × 40 000` matrix for `n1 = 200`, `n2 = 100`, 2 species).
pub fn nonzeros_in_window(
    n1: usize,
    n2: usize,
    nspec: usize,
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for r in rows {
        for c in row_nonzeros(n1, n2, nspec, r) {
            if cols.contains(&c) {
                out.push((r, c));
            }
        }
    }
    out
}

/// Total nonzero count of the full matrix.
pub fn nnz(n1: usize, n2: usize, nspec: usize) -> usize {
    (0..dimension(n1, n2, nspec)).map(|r| row_nonzeros(n1, n2, nspec, r).len()).sum()
}

/// Render a window as a portable bitmap (PBM P1) string, one pixel per
/// matrix entry, black where nonzero — Fig. 1 as an image file.
pub fn window_to_pbm(
    n1: usize,
    n2: usize,
    nspec: usize,
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> String {
    let (r0, c0) = (rows.start, cols.start);
    let h = rows.end - rows.start;
    let w = cols.end - cols.start;
    let mut grid = vec![false; h * w];
    for (r, c) in nonzeros_in_window(n1, n2, nspec, rows, cols) {
        grid[(r - r0) * w + (c - c0)] = true;
    }
    let mut s = String::with_capacity(h * (2 * w + 1) + 32);
    s.push_str(&format!("P1\n{w} {h}\n"));
    for row in grid.chunks(w) {
        for &px in row {
            s.push(if px { '1' } else { '0' });
            s.push(' ');
        }
        s.pop();
        s.push('\n');
    }
    s
}

/// Render a window as coarse ASCII art (`#` = any nonzero in the cell),
/// downsampling to at most `max_side` characters per side — for terminal
/// inspection alongside the PBM.
pub fn window_to_ascii(
    n1: usize,
    n2: usize,
    nspec: usize,
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
    max_side: usize,
) -> String {
    let (r0, c0) = (rows.start, cols.start);
    let h = rows.end - rows.start;
    let w = cols.end - cols.start;
    let step = (h.max(w)).div_ceil(max_side).max(1);
    let (ch, cw) = (h.div_ceil(step), w.div_ceil(step));
    let mut grid = vec![false; ch * cw];
    for (r, c) in nonzeros_in_window(n1, n2, nspec, rows, cols) {
        grid[((r - r0) / step) * cw + (c - c0) / step] = true;
    }
    let mut s = String::with_capacity(ch * (cw + 1));
    for row in grid.chunks(cw) {
        for &px in row {
            s.push(if px { '#' } else { '.' });
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_dimension_is_40000() {
        assert_eq!(dimension(200, 100, 2), 40_000);
    }

    #[test]
    fn interior_row_has_six_nonzeros() {
        // 5 spatial + 1 species partner.
        let cols = row_nonzeros(200, 100, 2, 205 + 200 * 3);
        assert_eq!(cols.len(), 6);
    }

    #[test]
    fn corner_row_has_fewer() {
        // Row 0: no west, no south → diag, east, north, partner.
        let cols = row_nonzeros(200, 100, 2, 0);
        assert_eq!(cols, vec![0, 1, 200, 20_000]);
    }

    #[test]
    fn bands_sit_at_documented_offsets() {
        let n1 = 200;
        let row = 3 * n1 + 7; // interior of species 0
        let cols = row_nonzeros(n1, 100, 2, row);
        let offsets: Vec<isize> = cols.iter().map(|&c| c as isize - row as isize).collect();
        // Diagonal, ±1 adjacent, ±n1 outlying, +n1·n2 species partner.
        assert_eq!(offsets, vec![-(n1 as isize), -1, 0, 1, n1 as isize, 20_000]);
    }

    #[test]
    fn no_wraparound_between_grid_rows() {
        let n1 = 10;
        // Last zone of a grid row must not couple to the first zone of
        // the next (they are not x1 neighbors).
        let row = n1 - 1; // (i1 = 9, i2 = 0)
        let cols = row_nonzeros(n1, 5, 1, row);
        assert!(!cols.contains(&(row + 1)), "wraparound coupling detected");
        assert!(cols.contains(&(row + n1)));
    }

    #[test]
    fn pattern_is_structurally_symmetric() {
        let (n1, n2, ns) = (7, 5, 2);
        let n = dimension(n1, n2, ns);
        let mut set = std::collections::HashSet::new();
        for r in 0..n {
            for c in row_nonzeros(n1, n2, ns, r) {
                set.insert((r, c));
            }
        }
        for &(r, c) in &set {
            assert!(set.contains(&(c, r)), "({r},{c}) present but ({c},{r}) missing");
        }
    }

    #[test]
    fn window_matches_row_enumeration() {
        let nz = nonzeros_in_window(200, 100, 2, 0..400, 0..400);
        // Every entry within the window, diagonal present.
        assert!(nz.contains(&(0, 0)) && nz.contains(&(399, 399)));
        assert!(nz.contains(&(200, 0)) && nz.contains(&(0, 200)), "outlying ±n1 bands missing");
        // Species coupling (offset 20 000) must NOT appear in this block.
        for &(r, c) in &nz {
            assert!(r.abs_diff(c) <= 200);
        }
    }

    #[test]
    fn pbm_has_correct_header_and_size() {
        let pbm = window_to_pbm(20, 10, 2, 0..40, 0..40);
        let mut lines = pbm.lines();
        assert_eq!(lines.next(), Some("P1"));
        assert_eq!(lines.next(), Some("40 40"));
        assert_eq!(lines.count(), 40);
    }

    #[test]
    fn ascii_render_is_bounded() {
        let art = window_to_ascii(200, 100, 2, 0..400, 0..400, 64);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines.len() <= 64);
        assert!(lines.iter().all(|l| l.len() <= 64));
        assert!(art.contains('#'));
    }

    #[test]
    fn nnz_counts_match_structure() {
        // 1 species, 3×3 grid: 9 diag + 12 x1-pairs... enumerate
        // directly: each interior coupling counted once per direction.
        let got = nnz(3, 3, 1);
        // diag 9, ±1: 2 per grid row × 3 rows × 2 dirs = 12, ±n1: 12.
        assert_eq!(got, 9 + 12 + 12);
    }
}
