//! Reusable solver scratch storage.
//!
//! Every Krylov solve needs a suite of tile-shaped scratch vectors
//! (BiCGSTAB keeps eight live, GMRES an Arnoldi basis on top).  The
//! seed implementation allocated them inside each solver call — dozens
//! of heap allocations per radiation step, every step.  A
//! [`SolverWorkspace`] owns that storage instead: the simulation
//! allocates one per rank, hands it to every solve, and after the first
//! solve at a given tile shape **no further `TileVec` allocations
//! happen in any solver loop** (asserted by the `workspace_alloc`
//! integration test and measured by the `ablation_alloc` bench via
//! [`crate::tilevec::tilevec_alloc_count`]).
//!
//! Reuse is bitwise safe: each solver fully overwrites the interiors it
//! reads, ghost frames are either refreshed by halo exchange before use
//! or never read, and the one accumulator GMRES relies on being zeroed
//! (`update`) is re-zeroed explicitly.  The `workspace_reuse` tests
//! assert dirty-workspace solves reproduce fresh-workspace iterates
//! bit for bit.

use crate::tilevec::TileVec;

/// Scratch vectors shared by BiCGSTAB, CG, and GMRES.
///
/// Field names follow BiCGSTAB; CG and GMRES alias them (CG's `z` is
/// `rhat`, its `ap` is `v`; GMRES's `w` is `s`, its `zhat` is `shat`,
/// its solution update accumulator is `t`, and its Arnoldi basis draws
/// from the `basis` pool).
#[derive(Debug)]
pub struct SolverWorkspace {
    dims: (usize, usize),
    pub(crate) r: TileVec,
    pub(crate) rhat: TileVec,
    pub(crate) p: TileVec,
    pub(crate) v: TileVec,
    pub(crate) s: TileVec,
    pub(crate) t: TileVec,
    pub(crate) phat: TileVec,
    pub(crate) shat: TileVec,
    /// Entry-iterate snapshot for [`crate::solver::solve_cascade`]:
    /// every fallback solver restarts from the x the caller passed in.
    /// Never used as scratch by the solvers themselves.
    pub(crate) x0: TileVec,
    /// Arnoldi basis pool; grows to `restart + 1` vectors on the first
    /// GMRES solve and is reused afterwards.
    pub(crate) basis: Vec<TileVec>,
}

impl SolverWorkspace {
    /// A workspace for solves on an `n1 × n2` tile.
    pub fn new(n1: usize, n2: usize) -> Self {
        SolverWorkspace {
            dims: (n1, n2),
            r: TileVec::new(n1, n2),
            rhat: TileVec::new(n1, n2),
            p: TileVec::new(n1, n2),
            v: TileVec::new(n1, n2),
            s: TileVec::new(n1, n2),
            t: TileVec::new(n1, n2),
            phat: TileVec::new(n1, n2),
            shat: TileVec::new(n1, n2),
            x0: TileVec::new(n1, n2),
            basis: Vec::new(),
        }
    }

    /// The tile shape this workspace currently serves.
    pub fn dims(&self) -> (usize, usize) {
        self.dims
    }

    /// Reshape for an `n1 × n2` tile.  A no-op (and allocation-free)
    /// when the shape already matches — the steady-state path; solvers
    /// call this on entry so a workspace can migrate between problems.
    pub fn ensure(&mut self, n1: usize, n2: usize) {
        if self.dims == (n1, n2) {
            return;
        }
        *self = SolverWorkspace::new(n1, n2);
    }

    /// Grow the Arnoldi basis pool to at least `n` vectors.
    pub(crate) fn ensure_basis(&mut self, n: usize) {
        let (n1, n2) = self.dims;
        while self.basis.len() < n {
            self.basis.push(TileVec::new(n1, n2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Allocation-count assertions live in the single-test
    // `workspace_alloc` integration binary: the counter is process
    // wide, so exact diffs are only meaningful with no concurrent
    // tests allocating.

    #[test]
    fn ensure_reshapes_on_mismatch() {
        let mut w = SolverWorkspace::new(6, 5);
        w.ensure(4, 9);
        assert_eq!(w.dims(), (4, 9));
        assert_eq!((w.r.n1(), w.r.n2()), (4, 9));
        w.ensure(4, 9);
        assert_eq!(w.dims(), (4, 9));
    }

    #[test]
    fn basis_pool_grows_to_requested_size() {
        let mut w = SolverWorkspace::new(3, 3);
        w.ensure_basis(5);
        assert_eq!(w.basis.len(), 5);
        w.ensure_basis(2);
        assert_eq!(w.basis.len(), 5);
    }
}
