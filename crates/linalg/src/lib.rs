//! # v2d-linalg — distributed vectors, V2D's sparse kernels, and solvers
//!
//! V2D never stores its sparse matrix: the Krylov solver applies the
//! finite-difference diffusion operator directly to column vectors that
//! are "stored as Fortran arrays defined with the same spatial shape as
//! the 2D grid" (paper, §I-C).  This crate is that layer:
//!
//! * [`TileVec`] — a rank-local field over the tile, two radiation species
//!   per zone, with a one-zone ghost frame for the 5-point stencil;
//! * [`kernels`] — DPROD / DAXPY / DSCAL / DDAXPY / copy / norm, each
//!   executing natively and charging its [`v2d_machine::KernelShape`] to
//!   the rank's cost sinks;
//! * [`StencilOp`] — the matrix-free pentadiagonal operator with local
//!   2×2 species coupling (the `x1·x2·2`-unknown system of the paper);
//! * [`precond`] — Identity / Jacobi / block-Jacobi / SPAI(1)
//!   preconditioners, the last following the sparse-approximate-inverse
//!   approach of Swesty, Smolarski & Saylor (2004), the paper's ref [7];
//! * [`solver`] — BiCGSTAB in classic form and in V2D's *restructured*
//!   form that gangs inner products into two global reductions per
//!   iteration, plus CG as the symmetric baseline;
//! * [`workspace`] — the reusable [`SolverWorkspace`] all three solvers
//!   draw their tile-shaped scratch from, making warm solves
//!   allocation-free;
//! * [`backend`] — the [`KernelBackend`] dispatch surface unifying the
//!   native loops with the `v2d-sve` instruction-level simulator
//!   (scalar and SVE codegen at any legal vector length);
//! * [`sparsity`] — the assembled sparsity pattern of the never-stored
//!   matrix, regenerating the paper's Fig. 1.
//!
//! Every kernel, operator, preconditioner, and solver entry point takes
//! a [`v2d_machine::ExecCtx`] — the execution context bundling the cost
//! lanes and the ambient working-set size — instead of ad-hoc
//! `(sink, ws)` pairs.

pub mod backend;
pub mod kernels;
pub mod op;
pub mod precond;
pub mod solver;
pub mod sparsity;
pub mod tilevec;
pub mod workspace;

pub use backend::{all_backends, KernelBackend, Native, SimScalar, SimSve};
pub use op::{LinearOp, StencilCoeffs, StencilOp};
pub use precond::{BlockJacobi, Identity, Jacobi, Preconditioner, Spai};
pub use solver::{
    bicgstab, cg, gmres, solve_cascade, BicgVariant, BreakdownReason, SolveAttempt, SolveError,
    SolveOpts, SolveStats, SolverKind,
};
pub use tilevec::{tilevec_alloc_count, TileVec};
pub use workspace::SolverWorkspace;

/// Number of radiation species (energy groups) carried per zone — the
/// "2" in the paper's `x1 × x2 × 2` linear systems.
pub const NSPEC: usize = 2;
