//! Preconditioners for the V2D linear systems.
//!
//! The paper (§I-C) states that "preconditioning of the linear system is
//! accomplished using a sparse approximate inverse preconditioner",
//! citing Swesty, Smolarski & Saylor (ApJS 153, 2004) — their ref [7],
//! which compared preconditioning strategies for exactly these
//! flux-limited-diffusion systems.  This module implements the family:
//!
//! * [`Identity`] — no preconditioning (baseline),
//! * [`Jacobi`] — reciprocal-diagonal scaling,
//! * [`BlockJacobi`] — exact inverse of the local 2×2 species-coupling
//!   blocks (a sparse approximate inverse on the block-diagonal pattern),
//! * [`Spai`] — a row-oriented SPAI(1): for every row, the entries of
//!   `M` on the operator's own stencil pattern minimizing
//!   `‖mᵢᵀA − eᵢᵀ‖₂`, assembled from local + halo coefficient data and
//!   solved as a ≤6×6 dense normal-equation system per row.
//!
//! All of them execute natively and charge [`KernelClass::Precond`]
//! shapes, so preconditioning shows up as its own line in the reproduced
//! §II-E routine breakdown.

use v2d_comm::{CartComm, Comm};
use v2d_machine::{ExecCtx, KernelClass, KernelShape};

use crate::op::{LinearOp, StencilCoeffs, StencilOp};
use crate::tilevec::TileVec;
use crate::NSPEC;

/// An approximation `M ≈ A⁻¹` applied as `z ← M·r`.
pub trait Preconditioner {
    /// `z ← M·r`.  `r` is mutable because pattern-bearing preconditioners
    /// refresh its ghost frame.
    fn apply(&mut self, comm: &Comm, cx: &mut ExecCtx, r: &mut TileVec, z: &mut TileVec);

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// No preconditioning: `z = r`.
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&mut self, _comm: &Comm, cx: &mut ExecCtx, r: &mut TileVec, z: &mut TileVec) {
        // A bare copy has no working set of its own: charge L1-resident
        // whatever the ambient solver state.
        let old_ws = cx.set_ws(0);
        crate::kernels::copy(cx, r, z);
        cx.set_ws(old_ws);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Reciprocal-diagonal (point-Jacobi) scaling.
pub struct Jacobi {
    inv_diag: TileVec,
    ws: usize,
}

impl Jacobi {
    /// Build from the operator's diagonal.
    pub fn new(op: &StencilOp) -> Self {
        let (n1, n2) = op.coeffs.dims();
        let mut inv_diag = TileVec::new(n1, n2);
        // A zero (or non-finite) diagonal means the stencil coefficients
        // are already corrupt on *this* rank only — e.g. an injected NaN
        // flowing through the flux limiter.  Panicking here would kill
        // one rank mid-assembly and strand its peers in the solver's
        // first collective; instead `1/0 → ±inf` (and `1/NaN → NaN`)
        // poisons the preconditioned residual, the ganged reductions go
        // non-finite on *every* rank, and the solver fails collectively
        // with `BreakdownReason::NonFinite` — same philosophy as
        // `Limiter::lambda` letting non-finite R through.
        inv_diag.fill_with(|s, i1, i2| 1.0 / op.coeffs.cc.get(s, i1 as isize, i2 as isize));
        Jacobi { inv_diag, ws: op.working_set() }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&mut self, _comm: &Comm, cx: &mut ExecCtx, r: &mut TileVec, z: &mut TileVec) {
        for s in 0..NSPEC {
            for i2 in 0..r.n2() {
                let rr = r.row(s, i2);
                let dr = self.inv_diag.row(s, i2);
                let zr = z.row_mut(s, i2);
                for ((zi, ri), di) in zr.iter_mut().zip(rr).zip(dr) {
                    *zi = ri * di;
                }
            }
        }
        cx.charge(&KernelShape::streaming(KernelClass::Precond, r.n_owned(), 1, 2, 1, self.ws));
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Exact inverse of each zone's 2×2 species block — the sparse
/// approximate inverse on the block-diagonal pattern (SPAI(0) in the
/// nomenclature of ref [7]).
pub struct BlockJacobi {
    /// Inverted block entries per zone: `z₀ = m00·r₀ + m01·r₁`,
    /// `z₁ = m10·r₀ + m11·r₁`; stored as four zone-indexed planes.
    m00: Vec<f64>,
    m01: Vec<f64>,
    m10: Vec<f64>,
    m11: Vec<f64>,
    n1: usize,
    ws: usize,
}

impl BlockJacobi {
    /// Build by inverting `[[cc₀, c01], [c10, cc₁]]` per zone.
    pub fn new(op: &StencilOp) -> Self {
        let (n1, n2) = op.coeffs.dims();
        let zones = n1 * n2;
        let mut p = BlockJacobi {
            m00: vec![0.0; zones],
            m01: vec![0.0; zones],
            m10: vec![0.0; zones],
            m11: vec![0.0; zones],
            n1,
            ws: op.working_set(),
        };
        for i2 in 0..n2 {
            for i1 in 0..n1 {
                let a = op.coeffs.cc.get(0, i1 as isize, i2 as isize);
                let b = op.coeffs.cpl.get(0, i1 as isize, i2 as isize);
                let c = op.coeffs.cpl.get(1, i1 as isize, i2 as isize);
                let d = op.coeffs.cc.get(1, i1 as isize, i2 as isize);
                let det = a * d - b * c;
                // A singular or non-finite block cannot be inverted, but
                // it also must not panic: this is a *per-rank* verdict
                // (a NaN coefficient from a faulted field exists on one
                // rank only), and a panic here is exactly the lockstep
                // divergence that deadlocked the nonlinear FieldNan run
                // (see ROADMAP).  Poison the inverse with NaN instead —
                // it reaches the solver's globally-reduced scalars, so
                // every rank agrees on `BreakdownReason::NonFinite` and
                // the recovery ladder can scrub and retry.
                let k = i2 * n1 + i1;
                if det.abs() > 1e-300 {
                    p.m00[k] = d / det;
                    p.m01[k] = -b / det;
                    p.m10[k] = -c / det;
                    p.m11[k] = a / det;
                } else {
                    p.m00[k] = f64::NAN;
                    p.m01[k] = f64::NAN;
                    p.m10[k] = f64::NAN;
                    p.m11[k] = f64::NAN;
                }
            }
        }
        p
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&mut self, _comm: &Comm, cx: &mut ExecCtx, r: &mut TileVec, z: &mut TileVec) {
        let n1 = self.n1;
        for i2 in 0..r.n2() {
            // Split z's species rows via interior row API (two separate
            // row_mut calls cannot overlap — different planes).
            for i1 in 0..n1 {
                let k = i2 * n1 + i1;
                let r0 = r.get(0, i1 as isize, i2 as isize);
                let r1 = r.get(1, i1 as isize, i2 as isize);
                z.set(0, i1 as isize, i2 as isize, self.m00[k] * r0 + self.m01[k] * r1);
                z.set(1, i1 as isize, i2 as isize, self.m10[k] * r0 + self.m11[k] * r1);
            }
        }
        cx.charge(&KernelShape::streaming(KernelClass::Precond, r.n_owned(), 3, 3, 1, self.ws));
    }

    fn name(&self) -> &'static str {
        "block-jacobi"
    }
}

/// Row-oriented SPAI(1): `M` carries the operator's own stencil pattern
/// (diagonal, four spatial neighbors, species partner), with each row's
/// entries minimizing `‖mᵢᵀA − eᵢᵀ‖₂` over that pattern.
///
/// The minimization for row `i` needs the coefficients of every row in
/// `i`'s pattern — one zone away at most — so construction requires the
/// coefficient halos filled by [`StencilOp::exchange_coeff_halos`].
/// Application is another stencil sweep, charged as `Precond`.
pub struct Spai {
    m: StencilCoeffs,
    cart: CartComm,
    ws: usize,
    buf: Vec<f64>,
}

/// A row index in the local (ghost-extended) stencil graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    s: usize,
    i1: isize,
    i2: isize,
}

impl Spai {
    /// Build the preconditioner.  `op` must have had its coefficient
    /// halos exchanged (`exchange_coeff_halos`) when running on more than
    /// one rank.
    ///
    /// `(g1, g2)` come from the topology; the global grid extent bounds
    /// which pattern entries exist (rows outside the domain have no
    /// columns).
    pub fn new(op: &StencilOp, comm: &Comm, cx: &mut ExecCtx) -> Self {
        let cart = *op.cart();
        let tile = cart.tile();
        let (n1, n2) = op.coeffs.dims();
        let (gn1, gn2) = (cart.map().n1, cart.map().n2);
        let (g1, g2) = (tile.i1_start as isize, tile.i2_start as isize);
        let in_domain = |i1: isize, i2: isize| {
            let (a, b) = (g1 + i1, g2 + i2);
            a >= 0 && b >= 0 && (a as usize) < gn1 && (b as usize) < gn2
        };
        // Coefficients of a row (possibly a ghost row — halo data).
        // Returns (self, w, e, s, n, partner) couplings.
        let row_coeffs = |c: &StencilCoeffs, nd: Node| -> [f64; 6] {
            [
                c.cc.get(nd.s, nd.i1, nd.i2),
                c.cw.get(nd.s, nd.i1, nd.i2),
                c.ce.get(nd.s, nd.i1, nd.i2),
                c.cs.get(nd.s, nd.i1, nd.i2),
                c.cn.get(nd.s, nd.i1, nd.i2),
                c.cpl.get(nd.s, nd.i1, nd.i2),
            ]
        };
        // The stencil targets of a row, aligned with row_coeffs.
        let targets = |nd: Node| -> [Node; 6] {
            [
                nd,
                Node { i1: nd.i1 - 1, ..nd },
                Node { i1: nd.i1 + 1, ..nd },
                Node { i2: nd.i2 - 1, ..nd },
                Node { i2: nd.i2 + 1, ..nd },
                Node { s: 1 - nd.s, ..nd },
            ]
        };

        let mut m = StencilCoeffs::new(n1, n2);
        for s in 0..NSPEC {
            for li2 in 0..n2 as isize {
                for li1 in 0..n1 as isize {
                    let i = Node { s, i1: li1, i2: li2 };
                    // Pattern J(i): the in-domain subset of i's stencil.
                    let mut pattern: Vec<Node> = Vec::with_capacity(6);
                    for t in targets(i) {
                        if in_domain(t.i1, t.i2) {
                            pattern.push(t);
                        }
                    }
                    let k = pattern.len();
                    // Column set K = ∪ stencil(l), l ∈ J(i); we only need
                    // G[l][l'] = Σ_k A[l,k]·A[l',k] and rhs[l] = A[l,i].
                    // Exploit the shared-target structure directly:
                    let mut g = vec![vec![0.0; k]; k];
                    let mut rhs = vec![0.0; k];
                    let mut rows: Vec<([f64; 6], [Node; 6])> = Vec::with_capacity(k);
                    for &l in &pattern {
                        rows.push((row_coeffs(&op.coeffs, l), targets(l)));
                    }
                    for (a, (ca, ta)) in rows.iter().enumerate() {
                        for (b, (cb, tb)) in rows.iter().enumerate().skip(a) {
                            let mut dot = 0.0;
                            for (va, na) in ca.iter().zip(ta) {
                                if !in_domain(na.i1, na.i2) {
                                    continue;
                                }
                                for (vb, nb) in cb.iter().zip(tb) {
                                    if na == nb {
                                        dot += va * vb;
                                    }
                                }
                            }
                            g[a][b] = dot;
                            g[b][a] = dot;
                        }
                        // rhs[a] = A[l_a, i]
                        let mut v = 0.0;
                        for (va, na) in ca.iter().zip(ta) {
                            if *na == i {
                                v += va;
                            }
                        }
                        rhs[a] = v;
                    }
                    let sol = solve_dense_small(&mut g, &mut rhs);
                    // Scatter the solved pattern entries into M's fields.
                    for (t, &v) in pattern.iter().zip(&sol) {
                        if *t == i {
                            m.cc.set(s, li1, li2, v);
                        } else if t.s != s {
                            m.cpl.set(s, li1, li2, v);
                        } else if t.i1 == li1 - 1 {
                            m.cw.set(s, li1, li2, v);
                        } else if t.i1 == li1 + 1 {
                            m.ce.set(s, li1, li2, v);
                        } else if t.i2 == li2 - 1 {
                            m.cs.set(s, li1, li2, v);
                        } else {
                            m.cn.set(s, li1, li2, v);
                        }
                    }
                }
            }
        }
        // Construction cost: per row, assembling the ≤6×6 normal
        // equations (~36 stencil-overlap dot terms) and an LU solve —
        // a few hundred flops streaming the coefficient fields.
        cx.charge(&KernelShape::streaming(
            KernelClass::Precond,
            n1 * n2 * NSPEC,
            320,
            12,
            6,
            op.working_set(),
        ));
        let _ = comm; // construction is communication-free once halos exist
        Spai { m, cart, ws: op.working_set(), buf: Vec::new() }
    }

    /// The computed approximate-inverse coefficients (tests inspect them).
    pub fn coeffs(&self) -> &StencilCoeffs {
        &self.m
    }
}

impl Preconditioner for Spai {
    fn apply(&mut self, comm: &Comm, cx: &mut ExecCtx, r: &mut TileVec, z: &mut TileVec) {
        let (n1, n2) = self.m.dims();
        let old_ws = cx.set_ws(self.ws);
        let mut buf = std::mem::take(&mut self.buf);
        StencilOp::exchange_halos(&self.cart, comm, cx, r, &mut buf);
        self.buf = buf;
        let c = &self.m;
        for s in 0..NSPEC {
            let other = 1 - s;
            for i2 in 0..n2 {
                let rc = r.padded_row(s, i2 as isize);
                let rs = &r.padded_row(s, i2 as isize - 1)[1..n1 + 1];
                let rn = &r.padded_row(s, i2 as isize + 1)[1..n1 + 1];
                let ro = r.row(other, i2);
                let mcc = c.cc.row(s, i2);
                let mcw = c.cw.row(s, i2);
                let mce = c.ce.row(s, i2);
                let mcs = c.cs.row(s, i2);
                let mcn = c.cn.row(s, i2);
                let mcpl = c.cpl.row(s, i2);
                let zr = z.row_mut(s, i2);
                for i1 in 0..n1 {
                    zr[i1] = mcc[i1] * rc[i1 + 1]
                        + mcw[i1] * rc[i1]
                        + mce[i1] * rc[i1 + 2]
                        + mcs[i1] * rs[i1]
                        + mcn[i1] * rn[i1]
                        + mcpl[i1] * ro[i1];
                }
            }
        }
        cx.charge_streaming(KernelClass::Precond, z.n_owned(), 11, 8, 1);
        cx.set_ws(old_ws);
    }

    fn name(&self) -> &'static str {
        "spai(1)"
    }
}

/// Solve a small dense SPD-ish system in place by Gaussian elimination
/// with partial pivoting; returns the solution.
fn solve_dense_small(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // `total_cmp` tolerates NaN coefficients (corrupt input fields);
        // a NaN or singular pivot poisons the whole solution rather than
        // panicking — per-rank panics desynchronize the collectives
        // (see `BlockJacobi::new`).
        let piv = match (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs())) {
            Some(p) => p,
            None => return Vec::new(),
        };
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        if d.is_nan() || d.abs() <= 1e-300 {
            return vec![f64::NAN; n];
        }
        for row in col + 1..n {
            let f = a[row][col] / d;
            if f == 0.0 {
                continue;
            }
            let (top, rest) = a.split_at_mut(row);
            let pivot_row = &top[col];
            for (k, v) in rest[0].iter_mut().enumerate().skip(col) {
                *v -= f * pivot_row[k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut v = b[row];
        for k in row + 1..n {
            v -= a[row][k] * x[k];
        }
        x[row] = v / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::assemble_dense;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::{CompilerProfile, ExecCtx};

    fn profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    #[test]
    fn small_dense_solver_solves() {
        let mut a = vec![vec![4.0, 1.0, 0.0], vec![1.0, 3.0, 1.0], vec![0.0, 1.0, 2.0]];
        let mut b = vec![1.0, 2.0, 3.0];
        let x = solve_dense_small(&mut a, &mut b);
        // Verify A·x = b with the original matrix.
        let a0 = [[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        let b0 = [1.0, 2.0, 3.0];
        for i in 0..3 {
            let r: f64 = (0..3).map(|j| a0[i][j] * x[j]).sum();
            assert!((r - b0[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let map = TileMap::new(6, 5, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let op = StencilOp::new(StencilCoeffs::manufactured(6, 5, 0, 0), cart);
            let mut p = Jacobi::new(&op);
            let mut r = TileVec::new(6, 5);
            r.fill_with(|s, i1, i2| (1 + s + i1 + i2) as f64);
            let mut z = TileVec::new(6, 5);
            p.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut r, &mut z);
            let d = op.coeffs.cc.get(1, 2, 3);
            assert!((z.get(1, 2, 3) - r.get(1, 2, 3) / d).abs() < 1e-15);
        });
    }

    #[test]
    fn block_jacobi_inverts_species_blocks() {
        let map = TileMap::new(4, 4, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let op = StencilOp::new(StencilCoeffs::manufactured(4, 4, 0, 0), cart);
            let mut p = BlockJacobi::new(&op);
            let mut r = TileVec::new(4, 4);
            r.fill_with(|s, i1, i2| ((s + 2 * i1 + 3 * i2) as f64 * 0.37).cos());
            let mut z = TileVec::new(4, 4);
            p.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut r, &mut z);
            // Check D·z = r where D is the 2×2 block.
            for i2 in 0..4isize {
                for i1 in 0..4isize {
                    let a = op.coeffs.cc.get(0, i1, i2);
                    let b = op.coeffs.cpl.get(0, i1, i2);
                    let c = op.coeffs.cpl.get(1, i1, i2);
                    let d = op.coeffs.cc.get(1, i1, i2);
                    let got0 = a * z.get(0, i1, i2) + b * z.get(1, i1, i2);
                    let got1 = c * z.get(0, i1, i2) + d * z.get(1, i1, i2);
                    assert!((got0 - r.get(0, i1, i2)).abs() < 1e-12);
                    assert!((got1 - r.get(1, i1, i2)).abs() < 1e-12);
                }
            }
        });
    }

    /// ‖M·A − I‖_F for a dense M and A.
    #[allow(clippy::needless_range_loop)]
    fn spai_quality(ma: &[Vec<f64>]) -> f64 {
        let n = ma.len();
        let mut q = 0.0;
        for i in 0..n {
            for j in 0..n {
                let t = ma[i][j] - if i == j { 1.0 } else { 0.0 };
                q += t * t;
            }
        }
        q.sqrt()
    }

    #[test]
    fn spai_beats_jacobi_in_frobenius_norm() {
        let (n1, n2) = (5, 4);
        let map = TileMap::new(n1, n2, 1, 1);
        Spmd::new(1).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let a = assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let n = a.len();

            let mut spai = Spai::new(&op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let mut jac = Jacobi::new(&op);

            // Dense M·A for both preconditioners, by applying M to A's
            // columns.
            let dense_ma = |p: &mut dyn Preconditioner, ctx: &mut v2d_comm::RankCtx| {
                let mut ma = vec![vec![0.0; n]; n];
                let mut col = TileVec::new(n1, n2);
                let mut out = TileVec::new(n1, n2);
                for j in 0..n {
                    col.zero();
                    for (i, row) in a.iter().enumerate() {
                        let (s, rest) = (i / (n1 * n2), i % (n1 * n2));
                        let (i2, i1) = (rest / n1, rest % n1);
                        col.set(s, i1 as isize, i2 as isize, row[j]);
                    }
                    p.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut col, &mut out);
                    for (i, v) in out.interior_to_vec().into_iter().enumerate() {
                        ma[i][j] = v;
                    }
                }
                ma
            };
            let q_spai = spai_quality(&dense_ma(&mut spai, ctx));
            let q_jac = spai_quality(&dense_ma(&mut jac, ctx));
            let q_none = spai_quality(&{
                // M = I → MA = A.
                a.clone()
            });
            assert!(q_spai < q_jac, "SPAI {q_spai} should beat Jacobi {q_jac}");
            assert!(q_jac < q_none, "Jacobi {q_jac} should beat identity {q_none}");
        });
    }

    #[test]
    fn spai_construction_is_decomposition_invariant() {
        // The SPAI coefficients at a tile boundary must match the
        // single-rank construction — this is exactly what the coefficient
        // halo exchange is for.
        let (n1, n2) = (8, 6);
        let single = {
            let map = TileMap::new(n1, n2, 1, 1);
            Spmd::new(1).with_profiles(profiles()).run(|ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                op.exchange_coeff_halos(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                let spai = Spai::new(&op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
                spai.coeffs().cc.interior_to_vec()
            })
        };
        let map = TileMap::new(n1, n2, 2, 2);
        let parts = Spmd::new(4).with_profiles(profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let t = cart.tile();
            let mut op = StencilOp::new(
                StencilCoeffs::manufactured(t.n1, t.n2, t.i1_start, t.i2_start),
                cart,
            );
            op.exchange_coeff_halos(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let spai = Spai::new(&op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink));
            let mut out = Vec::new();
            for s in 0..NSPEC {
                for i2 in 0..t.n2 {
                    for i1 in 0..t.n1 {
                        out.push((
                            (s, t.i1_start + i1, t.i2_start + i2),
                            spai.coeffs().cc.get(s, i1 as isize, i2 as isize),
                        ));
                    }
                }
            }
            out
        });
        let mut merged: Vec<_> = parts.into_iter().flatten().collect();
        merged.sort_by_key(|&((s, g1, g2), _)| (s, g2, g1));
        let merged_vals: Vec<f64> = merged.iter().map(|&(_, v)| v).collect();
        assert_eq!(single[0].len(), merged_vals.len());
        for (i, (a, b)) in single[0].iter().zip(&merged_vals).enumerate() {
            assert!((a - b).abs() < 1e-12, "SPAI diagonal differs at {i}: {a} vs {b}");
        }
    }
}
