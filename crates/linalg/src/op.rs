//! The matrix-free finite-difference operator.
//!
//! V2D's linear systems come from a second-order spatial finite-difference
//! discretization of the flux-limited diffusion operator.  The matrix is
//! never stored; [`StencilOp::apply`] evaluates `y = A·x` directly from
//! per-zone stencil coefficients — five spatial couplings per species
//! (the pentadiagonal structure of the paper's Fig. 1) plus the local
//! 2×2 species coupling that joins the two `x1·x2` blocks into one
//! `x1·x2·2` system.
//!
//! Each application first refreshes the ghost frame of `x` by halo
//! exchange (or zeros it at physical boundaries — homogeneous Dirichlet,
//! as in the Gaussian-pulse test problem), then sweeps the tile row-wise.

use v2d_comm::topology::Dir;
use v2d_comm::{CartComm, Comm};
use v2d_machine::{ExecCtx, KernelClass};

use crate::tilevec::TileVec;
use crate::NSPEC;

/// Per-zone stencil coefficients of the operator, in V2D's "shaped like
/// the grid" storage.  Ghost frames of the five spatial fields are filled
/// by [`StencilOp::exchange_coeff_halos`] when a preconditioner needs
/// neighbor-row coefficients (SPAI does).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilCoeffs {
    /// Diagonal.
    pub cc: TileVec,
    /// Coupling to the −x1 / +x1 / −x2 / +x2 neighbor.
    pub cw: TileVec,
    pub ce: TileVec,
    pub cs: TileVec,
    pub cn: TileVec,
    /// Local species coupling, stored with plane `s` holding the
    /// coefficient with which a species-`s` row reads the *other*
    /// species at the same zone (plane 0 = c₀₁, plane 1 = c₁₀).  A
    /// `TileVec` so it has a ghost frame like the other fields (SPAI
    /// needs neighbor-row couplings).
    pub cpl: TileVec,
}

impl StencilCoeffs {
    /// Zeroed coefficients for an `n1 × n2` tile.
    pub fn new(n1: usize, n2: usize) -> Self {
        StencilCoeffs {
            cc: TileVec::new(n1, n2),
            cw: TileVec::new(n1, n2),
            ce: TileVec::new(n1, n2),
            cs: TileVec::new(n1, n2),
            cn: TileVec::new(n1, n2),
            cpl: TileVec::new(n1, n2),
        }
    }

    /// Tile extents.
    pub fn dims(&self) -> (usize, usize) {
        (self.cc.n1(), self.cc.n2())
    }

    /// Total bytes of all coefficient fields (for working-set estimates).
    pub fn bytes(&self) -> usize {
        6 * self.cc.bytes()
    }

    /// A deterministic, diagonally dominant, *nonsymmetric* test operator
    /// defined by global zone coordinates, so every rank of any topology
    /// builds the same global matrix.  `(g1, g2)` are the tile's global
    /// offsets.  Used by tests, benches and examples.
    pub fn manufactured(n1: usize, n2: usize, g1: usize, g2: usize) -> Self {
        let mut c = StencilCoeffs::new(n1, n2);
        let w = |k: usize, a: usize, b: usize, s: usize| {
            0.4 + 0.15 * (((a * 7 + b * 13 + s * 29 + k * 41) % 97) as f64 / 97.0)
        };
        for s in 0..NSPEC {
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    let (a, b) = (g1 + i1, g2 + i2);
                    let cw = w(1, a, b, s);
                    let ce = w(2, a, b, s);
                    let cs = w(3, a, b, s);
                    let cn = w(4, a, b, s);
                    let cpl = 0.2 + 0.1 * (((a * 11 + b * 3 + s) % 53) as f64 / 53.0);
                    // Strict diagonal dominance keeps the test solves
                    // well-conditioned.
                    let diag = 1.0 + cw + ce + cs + cn + cpl + 0.05 * ((a + 2 * b + s) % 5) as f64;
                    c.cc.set(s, i1 as isize, i2 as isize, diag);
                    c.cw.set(s, i1 as isize, i2 as isize, -cw);
                    c.ce.set(s, i1 as isize, i2 as isize, -ce);
                    c.cs.set(s, i1 as isize, i2 as isize, -cs);
                    c.cn.set(s, i1 as isize, i2 as isize, -cn);
                    let v = if s == 0 { -cpl } else { -(cpl * 0.9) };
                    c.cpl.set(s, i1 as isize, i2 as isize, v);
                }
            }
        }
        c
    }

    /// A constant-coefficient symmetric positive-definite operator
    /// (discrete Laplacian plus mass term with symmetric species
    /// coupling) — the CG baseline's test matrix.  Constant coefficients
    /// are symmetric under any domain decomposition.
    pub fn laplacian_like(n1: usize, n2: usize) -> Self {
        let mut c = StencilCoeffs::new(n1, n2);
        for s in 0..NSPEC {
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    c.cc.set(s, i1 as isize, i2 as isize, 5.0);
                    c.cw.set(s, i1 as isize, i2 as isize, -1.0);
                    c.ce.set(s, i1 as isize, i2 as isize, -1.0);
                    c.cs.set(s, i1 as isize, i2 as isize, -1.0);
                    c.cn.set(s, i1 as isize, i2 as isize, -1.0);
                    c.cpl.set(s, i1 as isize, i2 as isize, -0.4);
                }
            }
        }
        c
    }
}

/// A matrix-free linear operator on tile fields.
pub trait LinearOp {
    /// `y ← A·x`.  `x` is mutable because its ghost frame is refreshed by
    /// halo exchange.  Cost is charged through `cx` at the operator's
    /// own working set (the ambient one is scoped and restored).
    fn apply(&mut self, comm: &Comm, cx: &mut ExecCtx, x: &mut TileVec, y: &mut TileVec);

    /// Local tile extents `(n1, n2)`.
    fn tile_dims(&self) -> (usize, usize);

    /// Ambient working set in bytes of a Krylov solve with this operator
    /// (coefficients + the solver's vector suite), used by the kernels'
    /// cost model to pick the memory level.
    fn working_set(&self) -> usize;
}

/// Number of tile-shaped vectors a preconditioned BiCGSTAB solve keeps
/// live (x, b, r, r̂, p, v, s, t, p̂, ŝ).
const SOLVER_VECTORS: usize = 10;

/// The V2D finite-difference diffusion operator on this rank's tile.
pub struct StencilOp {
    /// The stencil coefficients (public: preconditioners read them).
    pub coeffs: StencilCoeffs,
    cart: CartComm,
    ws_hint: usize,
    /// Reused halo packing buffer (no allocation in the hot path).
    buf: Vec<f64>,
}

impl StencilOp {
    /// Wrap coefficients for the tile owned by `cart`'s rank.
    pub fn new(coeffs: StencilCoeffs, cart: CartComm) -> Self {
        let (n1, n2) = coeffs.dims();
        assert_eq!(
            (n1, n2),
            (cart.tile().n1, cart.tile().n2),
            "coefficients do not match this rank's tile"
        );
        let ws_hint = coeffs.bytes() + SOLVER_VECTORS * TileVec::new(n1, n2).bytes();
        StencilOp { coeffs, cart, ws_hint, buf: Vec::new() }
    }

    /// The topology view this operator runs on.
    pub fn cart(&self) -> &CartComm {
        &self.cart
    }

    /// Refresh the ghost frame of `field`: halo exchange with neighbors,
    /// zeros at physical boundaries.  Charges packing work (at the
    /// context's ambient working set) and MPI time.
    pub fn exchange_halos(
        cart: &CartComm,
        comm: &Comm,
        cx: &mut ExecCtx,
        field: &mut TileVec,
        buf: &mut Vec<f64>,
    ) {
        cx.trace_enter("halo_exchange", &[]);
        // Post every direction first (nonblocking sends), then receive:
        // the virtual clocks of the receives then overlap instead of
        // serializing along the process chain — the behaviour of a real
        // Irecv/Isend/Waitall halo exchange.
        for dir in Dir::ALL {
            if cart.neighbor(dir).is_some() {
                field.pack_edge(dir, buf);
                cx.charge_streaming(KernelClass::Pack, buf.len(), 0, 1, 1);
                cart.post(comm, cx, dir, buf);
            } else {
                field.zero_ghost(dir);
            }
        }
        // `buf` is free again once every direction is posted; receive
        // through it (`collect_into` recycles the transport buffer) so a
        // steady-state exchange loop allocates nothing.
        for dir in Dir::ALL {
            match cart.collect_into(comm, cx, dir, buf) {
                Ok(true) => {
                    field.unpack_ghost(dir, buf);
                    cx.charge_streaming(KernelClass::Pack, buf.len(), 0, 1, 1);
                }
                Ok(false) => {}
                Err(e) => {
                    // A lost or late halo strip (only reachable when a
                    // fault injector armed a receive deadline): keep the
                    // stale ghost frame — a zero-order hold — instead of
                    // aborting the solve.  The tag stream realigns at
                    // the next exchange because each (src, dst) channel
                    // carries a single direction's tag.
                    if let Some(inj) = cx.faults() {
                        inj.note(format!("halo recv failed ({e}); holding stale ghost"));
                    }
                }
            }
        }
        cx.trace_exit("halo_exchange");
    }

    /// Fill the ghost frames of the five spatial coefficient fields from
    /// the neighboring ranks (needed once, before constructing an SPAI
    /// preconditioner).
    pub fn exchange_coeff_halos(&mut self, comm: &Comm, cx: &mut ExecCtx) {
        let old_ws = cx.set_ws(self.ws_hint);
        let mut buf = std::mem::take(&mut self.buf);
        for field in [
            &mut self.coeffs.cc,
            &mut self.coeffs.cw,
            &mut self.coeffs.ce,
            &mut self.coeffs.cs,
            &mut self.coeffs.cn,
            &mut self.coeffs.cpl,
        ] {
            Self::exchange_halos(&self.cart, comm, cx, field, &mut buf);
        }
        self.buf = buf;
        cx.set_ws(old_ws);
    }
}

impl LinearOp for StencilOp {
    fn apply(&mut self, comm: &Comm, cx: &mut ExecCtx, x: &mut TileVec, y: &mut TileVec) {
        let (n1, n2) = self.tile_dims();
        debug_assert_eq!((x.n1(), x.n2()), (n1, n2));
        debug_assert_eq!((y.n1(), y.n2()), (n1, n2));

        // The operator knows its own working set; scope it so charges
        // here classify residency correctly whatever the caller's
        // ambient state, then restore.
        let old_ws = cx.set_ws(self.ws_hint);
        let mut buf = std::mem::take(&mut self.buf);
        Self::exchange_halos(&self.cart, comm, cx, x, &mut buf);
        self.buf = buf;

        let c = &self.coeffs;
        for s in 0..NSPEC {
            let other = 1 - s;
            for i2 in 0..n2 {
                // Shifted input streams: exactly the five unit-stride
                // bands the SVE kernel study vectorizes.
                let xc = x.padded_row(s, i2 as isize); // xc[i1+1] = x[i1]
                let xs = &x.padded_row(s, i2 as isize - 1)[1..n1 + 1];
                let xn = &x.padded_row(s, i2 as isize + 1)[1..n1 + 1];
                let xo = x.row(other, i2);
                let rcc = c.cc.row(s, i2);
                let rcw = c.cw.row(s, i2);
                let rce = c.ce.row(s, i2);
                let rcs = c.cs.row(s, i2);
                let rcn = c.cn.row(s, i2);
                let rcpl = c.cpl.row(s, i2);
                let yr = y.row_mut(s, i2);
                for i1 in 0..n1 {
                    yr[i1] = rcc[i1] * xc[i1 + 1]
                        + rcw[i1] * xc[i1]
                        + rce[i1] * xc[i1 + 2]
                        + rcs[i1] * xs[i1]
                        + rcn[i1] * xn[i1]
                        + rcpl[i1] * xo[i1];
                }
            }
        }
        // 6 multiplies + 5 adds per unknown; streams x (with stencil
        // reuse ≈ 1.5 passes), five coefficient fields, the coupling
        // field (shared between species: ½ per unknown) and y.
        cx.charge_streaming(KernelClass::MatVec, y.n_owned(), 11, 8, 1);
        cx.set_ws(old_ws);
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.coeffs.dims()
    }

    fn working_set(&self) -> usize {
        self.ws_hint
    }
}

/// Assemble the operator's dense matrix by applying it to unit vectors —
/// an O(n²) oracle for tests and for the Fig. 1 sparsity harness.
/// Row/column indices use the global dictionary ordering
/// `i1 + n1·i2 + (n1·n2)·s` restricted to the local tile (callers use it
/// on single-rank communicators).
pub fn assemble_dense(op: &mut dyn LinearOp, comm: &Comm, cx: &mut ExecCtx) -> Vec<Vec<f64>> {
    let (n1, n2) = op.tile_dims();
    let n = n1 * n2 * NSPEC;
    let mut a = vec![vec![0.0; n]; n];
    let mut e = TileVec::new(n1, n2);
    let mut y = TileVec::new(n1, n2);
    #[allow(clippy::needless_range_loop)] // j is both a column index and a decomposed coordinate
    for j in 0..n {
        e.zero();
        let (s, rest) = (j / (n1 * n2), j % (n1 * n2));
        let (i2, i1) = (rest / n1, rest % n1);
        e.set(s, i1 as isize, i2 as isize, 1.0);
        op.apply(comm, cx, &mut e, &mut y);
        let col = y.interior_to_vec();
        for (i, &v) in col.iter().enumerate() {
            a[i][j] = v;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2d_comm::{Spmd, TileMap};
    use v2d_machine::CompilerProfile;

    fn single_profiles() -> Vec<CompilerProfile> {
        vec![CompilerProfile::cray_opt()]
    }

    /// Apply the manufactured operator on a 1-rank and a multi-rank
    /// decomposition; the global result must agree.
    fn global_apply(
        n1: usize,
        n2: usize,
        np1: usize,
        np2: usize,
    ) -> Vec<(usize, usize, usize, f64)> {
        let map = TileMap::new(n1, n2, np1, np2);
        let outs = Spmd::new(np1 * np2).with_profiles(single_profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let t = cart.tile();
            let coeffs = StencilCoeffs::manufactured(t.n1, t.n2, t.i1_start, t.i2_start);
            let mut op = StencilOp::new(coeffs, cart);
            let mut x = TileVec::new(t.n1, t.n2);
            x.fill_with(|s, i1, i2| {
                let (g1, g2) = (t.i1_start + i1, t.i2_start + i2);
                ((g1 * 3 + g2 * 7 + s * 11) as f64 * 0.1).sin()
            });
            let mut y = TileVec::new(t.n1, t.n2);
            op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut y);
            let mut out = Vec::new();
            for s in 0..NSPEC {
                for i2 in 0..t.n2 {
                    for i1 in 0..t.n1 {
                        out.push((
                            s,
                            t.i1_start + i1,
                            t.i2_start + i2,
                            y.get(s, i1 as isize, i2 as isize),
                        ));
                    }
                }
            }
            out
        });
        let mut all: Vec<_> = outs.into_iter().flatten().collect();
        all.sort_by_key(|&(s, g1, g2, _)| (s, g2, g1));
        all
    }

    #[test]
    fn decomposed_apply_matches_single_rank() {
        let single = global_apply(12, 10, 1, 1);
        for (np1, np2) in [(2, 1), (1, 2), (3, 2), (4, 5)] {
            let multi = global_apply(12, 10, np1, np2);
            assert_eq!(single.len(), multi.len());
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
                assert!(
                    (a.3 - b.3).abs() < 1e-13,
                    "mismatch at {:?}: {} vs {} ({}×{})",
                    (a.0, a.1, a.2),
                    a.3,
                    b.3,
                    np1,
                    np2
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dense_assembly_is_pentadiagonal_per_species() {
        let (n1, n2) = (5, 4);
        let map = TileMap::new(n1, n2, 1, 1);
        let rows = Spmd::new(1).with_profiles(single_profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let coeffs = StencilCoeffs::manufactured(n1, n2, 0, 0);
            let mut op = StencilOp::new(coeffs, cart);
            assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink))
        });
        let a = &rows[0];
        let n = n1 * n2;
        for i in 0..2 * n {
            for j in 0..2 * n {
                let (si, ri) = (i / n, i % n);
                let (sj, rj) = (j / n, j % n);
                let nonzero_allowed = if si == sj {
                    ri == rj
                        || (ri.abs_diff(rj) == 1 && ri / n1 == rj / n1) // ±1, same row
                        || ri.abs_diff(rj) == n1 // ±n1
                } else {
                    ri == rj // species coupling is local
                };
                if !nonzero_allowed {
                    assert_eq!(a[i][j], 0.0, "unexpected nonzero at ({i},{j})");
                }
            }
        }
        // Diagonal dominance of the manufactured operator.
        for i in 0..2 * n {
            let off: f64 = (0..2 * n).filter(|&j| j != i).map(|j| a[i][j].abs()).sum();
            assert!(a[i][i] > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn operator_is_nonsymmetric() {
        // BiCGSTAB exists in V2D precisely because A ≠ Aᵀ.
        let map = TileMap::new(4, 3, 1, 1);
        let rows = Spmd::new(1).with_profiles(single_profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(4, 3, 0, 0), cart);
            assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink))
        });
        let a = &rows[0];
        let asym = (0..a.len())
            .flat_map(|i| (0..a.len()).map(move |j| (i, j)))
            .any(|(i, j)| (a[i][j] - a[j][i]).abs() > 1e-12);
        assert!(asym);
    }

    #[test]
    fn apply_charges_matvec_and_pack() {
        let map = TileMap::new(8, 8, 1, 1);
        Spmd::new(1).with_profiles(single_profiles()).run(|ctx| {
            let cart = CartComm::new(&ctx.comm, map);
            let mut op = StencilOp::new(StencilCoeffs::manufactured(8, 8, 0, 0), cart);
            let mut x = TileVec::new(8, 8);
            x.fill_interior(1.0);
            let mut y = TileVec::new(8, 8);
            op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut y);
            let c = &ctx.sink.lanes[0].counters;
            assert_eq!(c.calls[KernelClass::MatVec.index()], 1);
            // Single rank: no neighbors, so no packing either.
            assert_eq!(c.calls[KernelClass::Pack.index()], 0);
        });
    }
}
