//! One dispatch surface for the paper's Table II kernels across the
//! three ways this repository can execute them:
//!
//! * [`Native`] — the plain Rust slice loops the solver layer runs in
//!   production (LLVM auto-vectorizes them on the host);
//! * [`SimScalar`] — the `v2d-sve` instruction-level simulator running
//!   the optimized *scalar* codegen (the paper's "No-SVE" column);
//! * [`SimSve`] — the same simulator running the vector-length-agnostic
//!   SVE codegen, at any legal vector length.
//!
//! All three implement [`KernelBackend`], so tests can drive the exact
//! same call sequence through each and assert the architectural results
//! agree with the f64 oracle — the property-test in
//! `tests/backend_agreement.rs` does exactly that for arbitrary inputs
//! and vector lengths.
//!
//! The simulator backends run the kernels through `v2d_sve::kernels`'
//! default (pre-decoded) execution mode: the program is assembled and
//! lowered once per (kernel, VL, residency) and reused from the
//! `v2d_sve::cache` program cache, so repeated backend invocations — a
//! BiCGSTAB iteration loop, a property-test sweep — do no per-call
//! assembly or decode work while producing bit-identical cycle counts.
//!
//! The [`native`] submodule holds the flat-slice routines themselves;
//! the `TileVec` kernels in [`crate::kernels`] run their row loops
//! through the same functions, so there is exactly one native
//! implementation of each mathematical operation in the crate.

use v2d_sve::exec::ExecConfig;
use v2d_sve::kernels::{self, BandedSystem, Variant};

/// The shared native slice routines.  These are the single source of
/// truth for the arithmetic of each kernel: the `TileVec` kernels map
/// them over interior rows, and the [`Native`] backend calls them on
/// flat vectors.
pub mod native {
    /// `Σ x·y`
    #[inline]
    pub fn dprod(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    /// `y ← a·x + y`
    #[inline]
    pub fn daxpy(a: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `y ← c − d·y`
    #[inline]
    pub fn dscal(c: f64, d: f64, y: &mut [f64]) {
        for yi in y.iter_mut() {
            *yi = c - d * *yi;
        }
    }

    /// `w ← a·x + b·y + z` (the paper's four-operand DDAXPY).
    #[inline]
    pub fn ddaxpy(a: f64, b: f64, x: &[f64], y: &[f64], z: &[f64], w: &mut [f64]) {
        for (((wi, xi), yi), zi) in w.iter_mut().zip(x).zip(y).zip(z) {
            *wi = a * xi + b * yi + zi;
        }
    }

    /// `w ← a·x + b·y + w` — DDAXPY with `w` doubling as the third
    /// operand (the in-place form the solvers use).
    #[inline]
    pub fn ddaxpy_acc(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
        for ((wi, xi), yi) in w.iter_mut().zip(x).zip(y) {
            *wi += a * xi + b * yi;
        }
    }

    /// BiCGSTAB's fused search-direction update `p ← r + β·(p − ω·v)`.
    #[inline]
    pub fn p_update(beta: f64, omega: f64, r: &[f64], v: &[f64], p: &mut [f64]) {
        for ((pi, ri), vi) in p.iter_mut().zip(r).zip(v) {
            *pi = ri + beta * (*pi - omega * vi);
        }
    }

    /// `w ← x − a·y` (residual-style update).
    #[inline]
    pub fn xmay(a: f64, x: &[f64], y: &[f64], w: &mut [f64]) {
        for ((wi, xi), yi) in w.iter_mut().zip(x).zip(y) {
            *wi = xi - a * yi;
        }
    }

    /// `r ← b − r` in place — the fused residual finisher (`r` arrives
    /// holding `A·x` and leaves holding `b − A·x`), which is what lets
    /// the solvers drop their per-solve `r.clone()`.
    #[inline]
    pub fn residual(b: &[f64], r: &mut [f64]) {
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
    }
}

/// A way to execute the five Table II kernels on flat `f64` slices.
///
/// Out-of-place signatures (`y` in, `out` separate) so the simulator
/// backends — whose memory lives inside the simulated core — present
/// the same surface as the native loops.
pub trait KernelBackend {
    /// Short name for reports and test diagnostics.
    fn name(&self) -> String;

    /// `Σ x·y`
    fn dprod(&mut self, x: &[f64], y: &[f64]) -> f64;

    /// `out ← a·x + y`
    fn daxpy(&mut self, a: f64, x: &[f64], y: &[f64], out: &mut [f64]);

    /// `out ← c − d·y`
    fn dscal(&mut self, c: f64, d: f64, y: &[f64], out: &mut [f64]);

    /// `out ← a·x + b·y + z`
    fn ddaxpy(&mut self, a: f64, b: f64, x: &[f64], y: &[f64], z: &[f64], out: &mut [f64]);

    /// `out ← A·x` for a pentadiagonal banded system.
    fn matvec(&mut self, sys: &BandedSystem, x: &[f64], out: &mut [f64]);
}

/// The production backend: plain Rust slice loops.
pub struct Native;

impl KernelBackend for Native {
    fn name(&self) -> String {
        "native".into()
    }

    fn dprod(&mut self, x: &[f64], y: &[f64]) -> f64 {
        native::dprod(x, y)
    }

    fn daxpy(&mut self, a: f64, x: &[f64], y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(y);
        native::daxpy(a, x, out);
    }

    fn dscal(&mut self, c: f64, d: f64, y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(y);
        native::dscal(c, d, out);
    }

    fn ddaxpy(&mut self, a: f64, b: f64, x: &[f64], y: &[f64], z: &[f64], out: &mut [f64]) {
        native::ddaxpy(a, b, x, y, z, out);
    }

    fn matvec(&mut self, sys: &BandedSystem, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&sys.matvec_reference(x));
    }
}

/// The instruction-level simulator running optimized scalar codegen.
pub struct SimScalar {
    cfg: ExecConfig,
}

impl SimScalar {
    pub fn new() -> Self {
        SimScalar { cfg: ExecConfig::a64fx_l1() }
    }
}

impl Default for SimScalar {
    fn default() -> Self {
        Self::new()
    }
}

/// The instruction-level simulator running vector-length-agnostic SVE
/// codegen at a chosen vector length.
pub struct SimSve {
    cfg: ExecConfig,
    vl_bits: u32,
}

impl SimSve {
    /// `vl_bits` must be a legal SVE vector length (a power of two in
    /// 128..=2048; the A64FX itself runs 512).
    pub fn new(vl_bits: u32) -> Self {
        SimSve { cfg: ExecConfig::a64fx_l1().with_vl(vl_bits), vl_bits }
    }
}

impl KernelBackend for SimScalar {
    fn name(&self) -> String {
        "sim-scalar".into()
    }

    fn dprod(&mut self, x: &[f64], y: &[f64]) -> f64 {
        kernels::run_dprod(x, y, Variant::Scalar, &self.cfg).0
    }

    fn daxpy(&mut self, a: f64, x: &[f64], y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_daxpy(a, x, y, Variant::Scalar, &self.cfg).0);
    }

    fn dscal(&mut self, c: f64, d: f64, y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_dscal(c, d, y, Variant::Scalar, &self.cfg).0);
    }

    fn ddaxpy(&mut self, a: f64, b: f64, x: &[f64], y: &[f64], z: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_ddaxpy(a, b, x, y, z, Variant::Scalar, &self.cfg).0);
    }

    fn matvec(&mut self, sys: &BandedSystem, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_matvec(sys, x, Variant::Scalar, &self.cfg).0);
    }
}

impl KernelBackend for SimSve {
    fn name(&self) -> String {
        format!("sim-sve/vl{}", self.vl_bits)
    }

    fn dprod(&mut self, x: &[f64], y: &[f64]) -> f64 {
        kernels::run_dprod(x, y, Variant::Sve, &self.cfg).0
    }

    fn daxpy(&mut self, a: f64, x: &[f64], y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_daxpy(a, x, y, Variant::Sve, &self.cfg).0);
    }

    fn dscal(&mut self, c: f64, d: f64, y: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_dscal(c, d, y, Variant::Sve, &self.cfg).0);
    }

    fn ddaxpy(&mut self, a: f64, b: f64, x: &[f64], y: &[f64], z: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_ddaxpy(a, b, x, y, z, Variant::Sve, &self.cfg).0);
    }

    fn matvec(&mut self, sys: &BandedSystem, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&kernels::run_matvec(sys, x, Variant::Sve, &self.cfg).0);
    }
}

/// Every backend the workspace can be compiled with, for tests that
/// sweep them.  SVE backends cover the legal power-of-two vector
/// lengths bracketing the A64FX's 512-bit implementation.
pub fn all_backends() -> Vec<Box<dyn KernelBackend>> {
    let mut v: Vec<Box<dyn KernelBackend>> = vec![Box::new(Native), Box::new(SimScalar::new())];
    for vl in [128u32, 512, 2048] {
        v.push(Box::new(SimSve::new(vl)));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let f = |k: f64| (0..n).map(|i| (i as f64 * k).sin() + 0.1).collect::<Vec<_>>();
        (f(0.37), f(0.51), f(0.13))
    }

    #[test]
    fn backends_agree_on_fixed_inputs() {
        let n = 97;
        let (x, y, z) = vecs(n);
        let sys = BandedSystem::test_system(n, 7);
        let mut oracle_dd = vec![0.0; n];
        native::ddaxpy(1.7, -0.6, &x, &y, &z, &mut oracle_dd);
        for mut b in all_backends() {
            let name = b.name();
            let got = b.dprod(&x, &y);
            let want = native::dprod(&x, &y);
            assert!((got - want).abs() < 1e-10 * (1.0 + want.abs()), "{name} dprod");
            let mut out = vec![0.0; n];
            b.ddaxpy(1.7, -0.6, &x, &y, &z, &mut out);
            for (g, w) in out.iter().zip(&oracle_dd) {
                assert!((g - w).abs() < 1e-13, "{name} ddaxpy: {g} vs {w}");
            }
            b.matvec(&sys, &x, &mut out);
            for (g, w) in out.iter().zip(sys.matvec_reference(&x)) {
                assert!((g - w).abs() < 1e-12, "{name} matvec: {g} vs {w}");
            }
        }
    }

    #[test]
    fn native_in_place_forms_match_out_of_place() {
        let n = 31;
        let (x, y, z) = vecs(n);
        // ddaxpy_acc(w ← a·x + b·y + w) must equal ddaxpy with z = w.
        let mut acc = z.clone();
        native::ddaxpy_acc(2.0, &x, -1.5, &y, &mut acc);
        let mut out = vec![0.0; n];
        native::ddaxpy(2.0, -1.5, &x, &y, &z, &mut out);
        assert_eq!(acc, out);
        // residual(r ← b − r) must equal xmay(w ← x − 1·y).
        let mut r = y.clone();
        native::residual(&x, &mut r);
        let mut w = vec![0.0; n];
        native::xmay(1.0, &x, &y, &mut w);
        assert_eq!(r, w);
    }
}
