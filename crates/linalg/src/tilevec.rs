//! Rank-local field storage: the Rust analogue of V2D's Fortran column
//! vectors "defined with the same spatial shape as the 2D grid".
//!
//! A [`TileVec`] holds [`crate::NSPEC`] species planes over the local
//! `n1 × n2` tile, each padded by a one-zone ghost frame.  Storage is
//! species-major, then x2-major, with x1 fastest — V2D's dictionary
//! ordering — so kernel inner loops run over contiguous rows and the
//! compiler can vectorize them (the whole point of the paper's study).
//!
//! Ghost zones hold either halo data received from a neighboring rank or
//! zeros at the physical domain boundary (the radiation test problem's
//! Dirichlet condition); they are never owned data.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::NSPEC;
use v2d_comm::topology::Dir;

/// Process-wide count of `TileVec` heap allocations (`new` + `clone`).
/// The solver layer is supposed to be allocation-free after its
/// [`crate::workspace::SolverWorkspace`] warms up; the
/// `ablation_alloc` bench and the workspace tests read this counter to
/// prove it.
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Number of `TileVec` allocations since process start.  Monotonic;
/// diff two readings to count the allocations of a code region.
pub fn tilevec_alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// A two-species field on the local tile with a one-zone ghost frame.
#[derive(Debug, PartialEq)]
pub struct TileVec {
    n1: usize,
    n2: usize,
    /// `(n1+2) × (n2+2) × NSPEC` values; see module docs for ordering.
    data: Vec<f64>,
}

impl Clone for TileVec {
    fn clone(&self) -> Self {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        TileVec { n1: self.n1, n2: self.n2, data: self.data.clone() }
    }
}

impl TileVec {
    /// A zeroed field over an `n1 × n2` tile.
    pub fn new(n1: usize, n2: usize) -> Self {
        assert!(n1 >= 1 && n2 >= 1, "tile must be at least 1×1");
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        TileVec { n1, n2, data: vec![0.0; NSPEC * (n1 + 2) * (n2 + 2)] }
    }

    /// Tile extent in x1.
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// Tile extent in x2.
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// Number of owned (interior) values = `n1 · n2 · NSPEC`.
    pub fn n_owned(&self) -> usize {
        NSPEC * self.n1 * self.n2
    }

    /// Bytes of one full species-padded field (ghosts included) — used as
    /// a working-set contribution for the cost model.
    pub fn bytes(&self) -> usize {
        8 * self.data.len()
    }

    #[inline]
    fn plane(&self) -> usize {
        (self.n1 + 2) * (self.n2 + 2)
    }

    /// Flat index of `(s, i1, i2)`; ghost zones are reached with −1 or
    /// `n1`/`n2`.
    #[inline]
    pub fn idx(&self, s: usize, i1: isize, i2: isize) -> usize {
        debug_assert!(s < NSPEC);
        debug_assert!((-1..=self.n1 as isize).contains(&i1), "i1 {i1} out of range");
        debug_assert!((-1..=self.n2 as isize).contains(&i2), "i2 {i2} out of range");
        s * self.plane() + (i2 + 1) as usize * (self.n1 + 2) + (i1 + 1) as usize
    }

    /// Value at `(s, i1, i2)` (ghosts allowed).
    #[inline]
    pub fn get(&self, s: usize, i1: isize, i2: isize) -> f64 {
        self.data[self.idx(s, i1, i2)]
    }

    /// Set value at `(s, i1, i2)` (ghosts allowed).
    #[inline]
    pub fn set(&mut self, s: usize, i1: isize, i2: isize, v: f64) {
        let i = self.idx(s, i1, i2);
        self.data[i] = v;
    }

    /// Interior row `(s, i2)` as a contiguous slice of `n1` values.
    #[inline]
    pub fn row(&self, s: usize, i2: usize) -> &[f64] {
        debug_assert!(i2 < self.n2);
        let start = self.idx(s, 0, i2 as isize);
        &self.data[start..start + self.n1]
    }

    /// Mutable interior row `(s, i2)`.
    #[inline]
    pub fn row_mut(&mut self, s: usize, i2: usize) -> &mut [f64] {
        debug_assert!(i2 < self.n2);
        let start = self.idx(s, 0, i2 as isize);
        &mut self.data[start..start + self.n1]
    }

    /// Padded row `(s, i2)` including the two x1 ghosts (length `n1+2`),
    /// with `i2` in `-1..=n2` — what the stencil kernels stream.
    #[inline]
    pub fn padded_row(&self, s: usize, i2: isize) -> &[f64] {
        let start = self.idx(s, -1, i2);
        &self.data[start..start + self.n1 + 2]
    }

    /// Fill the interior from a closure over `(s, i1, i2)` (local
    /// indices); ghosts are left untouched.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for s in 0..NSPEC {
            for i2 in 0..self.n2 {
                for i1 in 0..self.n1 {
                    let v = f(s, i1, i2);
                    self.set(s, i1 as isize, i2 as isize, v);
                }
            }
        }
    }

    /// Set every interior value to `v`.
    pub fn fill_interior(&mut self, v: f64) {
        self.fill_with(|_, _, _| v);
    }

    /// Zero everything, ghosts included.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy the interior (and ghosts) from another field of identical
    /// shape.
    pub fn copy_from(&mut self, other: &TileVec) {
        assert_eq!((self.n1, self.n2), (other.n1, other.n2), "shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Owned interior values flattened in `(s, i2, i1)` order.
    pub fn interior_to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_owned());
        for s in 0..NSPEC {
            for i2 in 0..self.n2 {
                out.extend_from_slice(self.row(s, i2));
            }
        }
        out
    }

    /// Number of values in one edge strip (`NSPEC ·` edge length).
    pub fn edge_len(&self, dir: Dir) -> usize {
        NSPEC
            * match dir {
                Dir::West | Dir::East => self.n2,
                Dir::South | Dir::North => self.n1,
            }
    }

    /// Pack the owned boundary strip facing `dir` into `buf`
    /// (species-major, then along the edge).  `buf` is resized to fit.
    pub fn pack_edge(&self, dir: Dir, buf: &mut Vec<f64>) {
        buf.clear();
        buf.reserve(self.edge_len(dir));
        match dir {
            Dir::West => {
                for s in 0..NSPEC {
                    for i2 in 0..self.n2 {
                        buf.push(self.get(s, 0, i2 as isize));
                    }
                }
            }
            Dir::East => {
                for s in 0..NSPEC {
                    for i2 in 0..self.n2 {
                        buf.push(self.get(s, self.n1 as isize - 1, i2 as isize));
                    }
                }
            }
            Dir::South => {
                for s in 0..NSPEC {
                    buf.extend_from_slice(self.row(s, 0));
                }
            }
            Dir::North => {
                for s in 0..NSPEC {
                    buf.extend_from_slice(self.row(s, self.n2 - 1));
                }
            }
        }
    }

    /// Unpack a strip received from the neighbor in `dir` into the ghost
    /// layer on that side.
    pub fn unpack_ghost(&mut self, dir: Dir, strip: &[f64]) {
        assert_eq!(strip.len(), self.edge_len(dir), "halo strip length mismatch");
        let mut k = 0;
        match dir {
            Dir::West => {
                for s in 0..NSPEC {
                    for i2 in 0..self.n2 {
                        self.set(s, -1, i2 as isize, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::East => {
                for s in 0..NSPEC {
                    for i2 in 0..self.n2 {
                        self.set(s, self.n1 as isize, i2 as isize, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::South => {
                for s in 0..NSPEC {
                    for i1 in 0..self.n1 {
                        self.set(s, i1 as isize, -1, strip[k]);
                        k += 1;
                    }
                }
            }
            Dir::North => {
                for s in 0..NSPEC {
                    for i1 in 0..self.n1 {
                        self.set(s, i1 as isize, self.n2 as isize, strip[k]);
                        k += 1;
                    }
                }
            }
        }
    }

    /// Zero the ghost layer on the `dir` side (physical boundary:
    /// homogeneous Dirichlet, as in the radiation test problem).
    pub fn zero_ghost(&mut self, dir: Dir) {
        match dir {
            Dir::West => {
                for s in 0..NSPEC {
                    for i2 in -1..=self.n2 as isize {
                        self.set(s, -1, i2, 0.0);
                    }
                }
            }
            Dir::East => {
                for s in 0..NSPEC {
                    for i2 in -1..=self.n2 as isize {
                        self.set(s, self.n1 as isize, i2, 0.0);
                    }
                }
            }
            Dir::South => {
                for s in 0..NSPEC {
                    for i1 in -1..=self.n1 as isize {
                        self.set(s, i1, -1, 0.0);
                    }
                }
            }
            Dir::North => {
                for s in 0..NSPEC {
                    for i1 in -1..=self.n1 as isize {
                        self.set(s, i1, self.n2 as isize, 0.0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_and_disjoint() {
        let mut v = TileVec::new(4, 3);
        v.fill_with(|s, i1, i2| (s * 100 + i2 * 10 + i1) as f64);
        assert_eq!(v.row(0, 1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(v.row(1, 2), &[120.0, 121.0, 122.0, 123.0]);
        assert_eq!(v.n_owned(), 24);
    }

    #[test]
    fn padded_row_includes_ghosts() {
        let mut v = TileVec::new(3, 2);
        v.fill_interior(5.0);
        v.set(0, -1, 0, 7.0);
        v.set(0, 3, 0, 9.0);
        assert_eq!(v.padded_row(0, 0), &[7.0, 5.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn pack_unpack_roundtrip_all_directions() {
        let mut a = TileVec::new(5, 4);
        a.fill_with(|s, i1, i2| (s * 1000 + i2 * 10 + i1) as f64);
        let mut b = TileVec::new(5, 4);
        let mut buf = Vec::new();
        for dir in Dir::ALL {
            a.pack_edge(dir, &mut buf);
            assert_eq!(buf.len(), a.edge_len(dir));
            b.unpack_ghost(dir, &buf);
        }
        // b's west ghost column must equal a's west owned column, etc.
        for s in 0..NSPEC {
            for i2 in 0..4isize {
                assert_eq!(b.get(s, -1, i2), a.get(s, 0, i2));
                assert_eq!(b.get(s, 5, i2), a.get(s, 4, i2));
            }
            for i1 in 0..5isize {
                assert_eq!(b.get(s, i1, -1), a.get(s, i1, 0));
                assert_eq!(b.get(s, i1, 4), a.get(s, i1, 3));
            }
        }
    }

    #[test]
    fn zero_ghost_clears_only_ghosts() {
        let mut v = TileVec::new(3, 3);
        v.fill_interior(1.0);
        for s in 0..NSPEC {
            for i in -1..=3isize {
                v.set(s, -1, i, 9.0);
                v.set(s, 3, i, 9.0);
                v.set(s, i, -1, 9.0);
                v.set(s, i, 3, 9.0);
            }
        }
        for dir in Dir::ALL {
            v.zero_ghost(dir);
        }
        for s in 0..NSPEC {
            for i2 in 0..3 {
                assert_eq!(v.row(s, i2), &[1.0, 1.0, 1.0]);
            }
            for i in -1..=3isize {
                assert_eq!(v.get(s, -1, i), 0.0);
                assert_eq!(v.get(s, 3, i), 0.0);
            }
        }
    }

    #[test]
    fn interior_to_vec_is_dictionary_ordered() {
        let mut v = TileVec::new(2, 2);
        v.fill_with(|s, i1, i2| (s * 100 + i2 * 10 + i1) as f64);
        assert_eq!(v.interior_to_vec(), vec![0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn alloc_counter_counts_new_and_clone() {
        // Other tests allocate concurrently (the counter is process
        // wide), so only a lower bound is exact here; the single-test
        // `workspace_alloc` integration binary asserts equality.
        let before = tilevec_alloc_count();
        let v = TileVec::new(3, 3);
        let _w = v.clone();
        let mut u = TileVec::new(3, 3);
        u.copy_from(&v); // copies reuse storage: not an allocation
        assert!(tilevec_alloc_count() - before >= 3);
    }

    #[test]
    #[should_panic(expected = "at least 1×1")]
    fn zero_size_tile_rejected() {
        let _ = TileVec::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_strip_length_rejected() {
        let mut v = TileVec::new(3, 3);
        v.unpack_ghost(Dir::West, &[1.0, 2.0]);
    }
}
