//! Breakdown-path tests of the solver resilience layer: constructed and
//! injected BiCGSTAB breakdowns, in-solver true-residual restarts, and
//! the BiCGSTAB → GMRES → CG fallback cascade.

use v2d_comm::{CartComm, Spmd, TileMap};
use v2d_linalg::{
    bicgstab, solve_cascade, BlockJacobi, BreakdownReason, Identity, LinearOp, SolveOpts,
    SolverKind, SolverWorkspace, StencilCoeffs, StencilOp, TileVec,
};
use v2d_machine::{CompilerProfile, ExecCtx, FaultInjector, FaultKind, FaultPlan};

fn profiles() -> Vec<CompilerProfile> {
    vec![CompilerProfile::cray_opt()]
}

/// An injector whose plan forces `count` solver breakdowns, armed for
/// step 0.
fn breakdown_injector(count: u32) -> FaultInjector {
    let plan = FaultPlan::empty().with_event(0, None, FaultKind::SolverBreakdown { count });
    let mut inj = FaultInjector::new(plan, 0);
    inj.begin_step(0);
    inj
}

#[test]
fn nonfinite_rhs_is_detected_not_iterated() {
    // A NaN in the right-hand side must surface as a NonFinite
    // breakdown immediately — not spin max_iters on poisoned data and
    // not panic.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (8, 8);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_interior(1.0);
        b.set(0, 3, 3, f64::NAN);
        let mut m = Identity;
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::new(&mut ctx.sink),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts::default(),
        )
        .unwrap();
        assert!(!st.converged);
        assert_eq!(st.breakdown, Some(BreakdownReason::NonFinite));
        assert_eq!(st.iters, 0, "poison must be caught before iterating");
    });
}

#[test]
fn injected_breakdown_recovers_via_true_residual_restart() {
    // One forced ρ → 0: the solver restarts from the true residual and
    // still converges, recording the recovery.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (10, 10);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| ((s * 3 + i1 + 2 * i2) as f64 * 0.23).sin());
        let mut m = BlockJacobi::new(&op);
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let mut inj = breakdown_injector(1);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::with_parts(&mut ctx.sink, None, Some(&mut inj), None),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts { tol: 1e-10, ..Default::default() },
        )
        .unwrap();
        assert!(st.converged, "restart should rescue a single breakdown: {st:?}");
        assert_eq!(st.breakdown, None);
        assert!(st.recoveries >= 1, "the restart must be recorded: {st:?}");
        assert!(!inj.log.is_empty(), "injection and restart should be logged");
    });
}

#[test]
fn exhausted_restarts_surface_the_breakdown_reason() {
    // More forced breakdowns than max_restarts: BiCGSTAB alone must
    // give up with the classified reason instead of looping.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (10, 10);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_interior(1.0);
        let mut m = Identity;
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let opts = SolveOpts { max_restarts: 2, ..Default::default() };
        let mut inj = breakdown_injector(3);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::with_parts(&mut ctx.sink, None, Some(&mut inj), None),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &opts,
        )
        .unwrap();
        assert!(!st.converged);
        assert_eq!(st.breakdown, Some(BreakdownReason::RhoZero));
        assert_eq!(st.recoveries, 2, "both restarts spent: {st:?}");
    });
}

#[test]
fn cascade_falls_back_and_converges() {
    // Enough forced breakdowns to sink BiCGSTAB (3) — the cascade must
    // rescue the solve with GMRES, and with one more (4) with CG.
    for (count, min_fallbacks) in [(3u32, 1u32), (4, 2)] {
        Spmd::new(1).with_profiles(profiles()).run(move |ctx| {
            let (n1, n2) = (10, 10);
            let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
            let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
            let mut b = TileVec::new(n1, n2);
            b.fill_with(|s, i1, i2| ((s + i1 * 2 + i2) as f64 * 0.31).cos());
            let mut m = BlockJacobi::new(&op);
            let mut x = TileVec::new(n1, n2);
            let mut wks = SolverWorkspace::new(n1, n2);
            let mut inj = breakdown_injector(count);
            let st = solve_cascade(
                &ctx.comm,
                &mut ExecCtx::with_parts(&mut ctx.sink, None, Some(&mut inj), None),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &SolveOpts { tol: 1e-10, max_restarts: 2, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("cascade must converge for count {count}: {e}"));
            assert!(st.converged);
            assert!(
                st.recoveries >= min_fallbacks,
                "count {count}: expected ≥{min_fallbacks} recoveries, got {st:?}"
            );
            // The fallback solved the same system: check the residual.
            let mut ax = TileVec::new(n1, n2);
            op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut ax);
            let worst = ax
                .interior_to_vec()
                .iter()
                .zip(b.interior_to_vec())
                .map(|(a, w)| (a - w).abs())
                .fold(0.0, f64::max);
            assert!(worst < 1e-7, "count {count}: residual {worst} too large");
        });
    }
}

#[test]
fn cascade_exhaustion_reports_every_attempt_and_restores_x() {
    // Five forced breakdowns sink all three solvers; the error must
    // name each attempt in order and leave the initial guess untouched.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (8, 8);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_interior(1.0);
        let mut m = Identity;
        let mut x = TileVec::new(n1, n2);
        x.fill_with(|s, i1, i2| (s + i1 + i2) as f64 * 0.5);
        let x_before = x.interior_to_vec();
        let mut wks = SolverWorkspace::new(n1, n2);
        let mut inj = breakdown_injector(5);
        let err = solve_cascade(
            &ctx.comm,
            &mut ExecCtx::with_parts(&mut ctx.sink, None, Some(&mut inj), None),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts { max_restarts: 2, ..Default::default() },
        )
        .expect_err("five breakdowns must exhaust the cascade");
        let kinds: Vec<SolverKind> = err.attempts.iter().map(|a| a.solver).collect();
        assert_eq!(kinds, [SolverKind::BicgStab, SolverKind::Gmres, SolverKind::Cg]);
        assert_eq!(err.attempts[1].stats.breakdown, Some(BreakdownReason::Injected));
        assert_eq!(err.attempts[2].stats.breakdown, Some(BreakdownReason::Injected));
        let msg = err.to_string();
        for needle in ["BicgStab", "Gmres", "Cg"] {
            assert!(msg.contains(needle), "error should name {needle}: {msg}");
        }
        assert_eq!(x.interior_to_vec(), x_before, "failed cascade must restore x");
    });
}

#[test]
fn empty_plan_injector_is_bit_invisible_to_the_solver() {
    // The same solve with no injector and with an empty-plan injector
    // must agree bit-for-bit in both solution and statistics.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (12, 10);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| ((s * 7 + i1 * 3 + i2 * 5) as f64 * 0.17).sin());
        let opts = SolveOpts { tol: 1e-11, ..Default::default() };

        let mut run = |inj: Option<&mut FaultInjector>| {
            let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
            let mut m = BlockJacobi::new(&op);
            let mut x = TileVec::new(n1, n2);
            let mut wks = SolverWorkspace::new(n1, n2);
            let st = bicgstab(
                &ctx.comm,
                &mut ExecCtx::with_parts(&mut ctx.sink, None, inj, None),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &opts,
            )
            .unwrap();
            (st, x.interior_to_vec().iter().map(|v| v.to_bits()).collect::<Vec<u64>>())
        };

        let (st_plain, x_plain) = run(None);
        let mut inj = FaultInjector::new(FaultPlan::empty(), 0);
        inj.begin_step(0);
        let (st_inj, x_inj) = run(Some(&mut inj));
        assert_eq!(st_plain, st_inj, "stats must match bitwise");
        assert_eq!(x_plain, x_inj, "solution must match bitwise");
        assert!(inj.log.is_empty(), "an empty plan must log nothing");
    });
}
