//! Stress and robustness tests of the solver stack: near-singular
//! systems, tight tolerances, tiny tiles, and the documented breakdown
//! paths.

use v2d_comm::{CartComm, Spmd, TileMap};
use v2d_linalg::{
    bicgstab, cg, gmres, BicgVariant, BlockJacobi, Identity, Jacobi, LinearOp, SolveOpts,
    SolverWorkspace, StencilCoeffs, StencilOp, TileVec, NSPEC,
};
use v2d_machine::{CompilerProfile, ExecCtx};

fn profiles() -> Vec<CompilerProfile> {
    vec![CompilerProfile::cray_opt()]
}

fn residual_inf(
    comm: &v2d_comm::Comm,
    sink: &mut v2d_machine::MultiCostSink,
    op: &mut StencilOp,
    b: &TileVec,
    x: &TileVec,
) -> f64 {
    let (n1, n2) = op.tile_dims();
    let mut ax = TileVec::new(n1, n2);
    let mut xc = x.clone();
    op.apply(comm, &mut ExecCtx::new(sink), &mut xc, &mut ax);
    ax.interior_to_vec()
        .iter()
        .zip(b.interior_to_vec())
        .map(|(a, w)| (a - w).abs())
        .fold(0.0, f64::max)
}

#[test]
fn one_by_one_tile_solves() {
    // The smallest legal problem: a single zone, two coupled unknowns.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let cart = CartComm::new(&ctx.comm, TileMap::new(1, 1, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::manufactured(1, 1, 0, 0), cart);
        let mut b = TileVec::new(1, 1);
        b.set(0, 0, 0, 2.0);
        b.set(1, 0, 0, -1.0);
        let mut x = TileVec::new(1, 1);
        let mut m = Identity;
        let mut wks = SolverWorkspace::new(1, 1);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::new(&mut ctx.sink),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts { tol: 1e-13, ..Default::default() },
        )
        .unwrap();
        assert!(st.converged);
        assert!(residual_inf(&ctx.comm, &mut ctx.sink, &mut op, &b, &x) < 1e-10);
    });
}

#[test]
fn weakly_dominant_system_still_converges() {
    // Shrink the diagonal margin toward the M-matrix limit: Krylov
    // iterations grow, convergence must survive.
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (12, 10);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut c = StencilCoeffs::manufactured(n1, n2, 0, 0);
        // Reduce every diagonal toward the off-diagonal sum, keeping a
        // sliver of dominance.
        for s in 0..NSPEC {
            for i2 in 0..n2 as isize {
                for i1 in 0..n1 as isize {
                    let off = c.cw.get(s, i1, i2).abs()
                        + c.ce.get(s, i1, i2).abs()
                        + c.cs.get(s, i1, i2).abs()
                        + c.cn.get(s, i1, i2).abs()
                        + c.cpl.get(s, i1, i2).abs();
                    c.cc.set(s, i1, i2, off + 0.01);
                }
            }
        }
        let mut op = StencilOp::new(c, cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| ((s + i1 + i2) as f64 * 0.37).sin());
        let mut m = Jacobi::new(&op);
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::new(&mut ctx.sink),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts { tol: 1e-10, max_iters: 5000, ..Default::default() },
        )
        .unwrap();
        assert!(st.converged, "weakly dominant solve failed: {st:?}");
        assert!(residual_inf(&ctx.comm, &mut ctx.sink, &mut op, &b, &x) < 1e-7);
    });
}

#[test]
fn all_three_solvers_agree_on_one_system() {
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (9, 9);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        // Symmetric operator so CG applies too.
        let make_op = || StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| ((s * 5 + i1 * 3 + i2) as f64 * 0.19).cos());
        let opts = SolveOpts { tol: 1e-12, ..Default::default() };

        let mut solutions = Vec::new();
        let mut wks = SolverWorkspace::new(n1, n2);
        for which in 0..3 {
            let mut op = make_op();
            let mut m = BlockJacobi::new(&op);
            let mut x = TileVec::new(n1, n2);
            let mut cx = ExecCtx::new(&mut ctx.sink);
            let st = match which {
                0 => bicgstab(&ctx.comm, &mut cx, &mut op, &mut m, &b, &mut x, &mut wks, &opts)
                    .unwrap(),
                1 => cg(&ctx.comm, &mut cx, &mut op, &mut m, &b, &mut x, &mut wks, &opts).unwrap(),
                _ => gmres(&ctx.comm, &mut cx, &mut op, &mut m, &b, &mut x, &mut wks, 25, &opts)
                    .unwrap(),
            };
            assert!(st.converged, "solver {which} failed: {st:?}");
            solutions.push(x.interior_to_vec());
        }
        for k in 1..3 {
            for (a, c) in solutions[0].iter().zip(&solutions[k]) {
                assert!((a - c).abs() < 1e-8, "solver {k} disagrees: {a} vs {c}");
            }
        }
    });
}

#[test]
fn classic_variant_issues_more_reductions_for_identical_answers() {
    Spmd::new(4).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (16, 16);
        let map = TileMap::new(n1, n2, 2, 2);
        let cart = CartComm::new(&ctx.comm, map);
        let t = cart.tile();
        let b = {
            let mut b = TileVec::new(t.n1, t.n2);
            b.fill_with(|s, i1, i2| {
                (((t.i1_start + i1) * 2 + (t.i2_start + i2) * 7 + s) as f64 * 0.11).sin()
            });
            b
        };
        let mut run = |variant| {
            let mut op = StencilOp::new(
                StencilCoeffs::manufactured(t.n1, t.n2, t.i1_start, t.i2_start),
                cart,
            );
            let mut m = Identity;
            let mut x = TileVec::new(t.n1, t.n2);
            let mut wks = SolverWorkspace::new(t.n1, t.n2);
            let st = bicgstab(
                &ctx.comm,
                &mut ExecCtx::new(&mut ctx.sink),
                &mut op,
                &mut m,
                &b,
                &mut x,
                &mut wks,
                &SolveOpts { tol: 1e-10, variant, ..Default::default() },
            )
            .unwrap();
            assert!(st.converged);
            (st, x.interior_to_vec())
        };
        let (sc, xc) = run(BicgVariant::Classic);
        let (sg, xg) = run(BicgVariant::Ganged);
        assert!(
            sc.reductions as f64 >= 2.0 * sg.reductions as f64 * 0.8,
            "classic {} vs ganged {} reductions",
            sc.reductions,
            sg.reductions
        );
        for (a, b) in xc.iter().zip(&xg) {
            assert!((a - b).abs() < 1e-6);
        }
    });
}

#[test]
fn max_iters_cap_is_honored() {
    Spmd::new(1).with_profiles(profiles()).run(|ctx| {
        let (n1, n2) = (20, 20);
        let cart = CartComm::new(&ctx.comm, TileMap::new(n1, n2, 1, 1));
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut b = TileVec::new(n1, n2);
        b.fill_interior(1.0);
        let mut m = Identity;
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let st = bicgstab(
            &ctx.comm,
            &mut ExecCtx::new(&mut ctx.sink),
            &mut op,
            &mut m,
            &b,
            &mut x,
            &mut wks,
            &SolveOpts { tol: 1e-30, max_iters: 3, ..Default::default() },
        )
        .unwrap();
        assert!(!st.converged);
        assert_eq!(st.iters, 3);
    });
}
