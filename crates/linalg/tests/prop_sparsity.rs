//! Property tests of the sparsity enumeration: it must agree with the
//! densely assembled operator for arbitrary grid shapes — the guarantee
//! behind Fig. 1.

use proptest::prelude::*;
use v2d_comm::{CartComm, Spmd, TileMap};
use v2d_linalg::{op::assemble_dense, sparsity, StencilCoeffs, StencilOp};
use v2d_machine::{CompilerProfile, ExecCtx};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pattern_matches_assembled_operator(n1 in 2usize..7, n2 in 2usize..6) {
        let map = TileMap::new(n1, n2, 1, 1);
        let dense = Spmd::new(1)
            .with_profiles(vec![CompilerProfile::cray_opt()])
            .run(move |ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let mut op = StencilOp::new(StencilCoeffs::manufactured(n1, n2, 0, 0), cart);
                assemble_dense(&mut op, &ctx.comm, &mut ExecCtx::new(&mut ctx.sink))
            });
        let a = &dense[0];
        let dim = sparsity::dimension(n1, n2, 2);
        prop_assert_eq!(a.len(), dim);
        for r in 0..dim {
            let pattern = sparsity::row_nonzeros(n1, n2, 2, r);
            for c in 0..dim {
                let structurally_nonzero = pattern.contains(&c);
                if a[r][c] != 0.0 {
                    prop_assert!(
                        structurally_nonzero,
                        "assembled nonzero at ({r},{c}) outside the declared pattern"
                    );
                }
                // The manufactured operator fills the whole pattern.
                if structurally_nonzero {
                    prop_assert!(a[r][c] != 0.0, "pattern entry ({r},{c}) is zero");
                }
            }
        }
    }

    #[test]
    fn nnz_equals_row_sum(n1 in 1usize..12, n2 in 1usize..12, ns in 1usize..3) {
        let total: usize = (0..sparsity::dimension(n1, n2, ns))
            .map(|r| sparsity::row_nonzeros(n1, n2, ns, r).len())
            .sum();
        prop_assert_eq!(total, sparsity::nnz(n1, n2, ns));
    }
}
