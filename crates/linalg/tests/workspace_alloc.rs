//! Allocation accounting for the reusable [`SolverWorkspace`]: once a
//! workspace is warm, re-solving allocates **zero** `TileVec`s — the
//! solver iteration loops run entirely out of the workspace.
//!
//! The TileVec allocation counter is a process-wide atomic, so this
//! file holds exactly ONE `#[test]` — a second concurrent test would
//! race the counter and make the exact-equality assertions flaky.  The
//! looser `>=` sanity checks live in the tilevec unit tests; the strict
//! zero-delta contract lives here.

use v2d_comm::{CartComm, Spmd, TileMap};
use v2d_linalg::{
    bicgstab, cg, gmres, tilevec_alloc_count, BlockJacobi, SolveOpts, SolverWorkspace,
    StencilCoeffs, StencilOp, TileVec,
};
use v2d_machine::{CompilerProfile, ExecCtx};

#[test]
fn warm_workspace_solves_allocate_zero_tilevecs() {
    let (n1, n2) = (24, 20);
    let map = TileMap::new(n1, n2, 1, 1);
    let deltas = Spmd::new(1).with_profiles(vec![CompilerProfile::cray_opt()]).run(move |ctx| {
        let cart = CartComm::new(&ctx.comm, map);
        // Symmetric operator so CG is applicable alongside the others.
        let mut op = StencilOp::new(StencilCoeffs::laplacian_like(n1, n2), cart);
        let mut m = BlockJacobi::new(&op);
        let mut b = TileVec::new(n1, n2);
        b.fill_with(|s, i1, i2| ((s * 3 + i1 + i2 * 2) as f64 * 0.23).sin() + 0.1);
        let mut x = TileVec::new(n1, n2);
        let mut wks = SolverWorkspace::new(n1, n2);
        let opts = SolveOpts { tol: 1e-10, ..Default::default() };
        let restart = 20;

        let mut solve = |which: usize, x: &mut TileVec, wks: &mut SolverWorkspace| {
            x.fill_interior(0.0);
            let cx = &mut ExecCtx::new(&mut ctx.sink);
            let st = match which {
                0 => bicgstab(&ctx.comm, cx, &mut op, &mut m, &b, x, wks, &opts).unwrap(),
                1 => cg(&ctx.comm, cx, &mut op, &mut m, &b, x, wks, &opts).unwrap(),
                _ => gmres(&ctx.comm, cx, &mut op, &mut m, &b, x, wks, restart, &opts).unwrap(),
            };
            assert!(st.converged, "solver {which} failed: {st:?}");
        };

        let mut deltas = Vec::new();
        for which in 0..3 {
            // Warm-up: first use may grow the workspace (GMRES
            // allocates its Krylov basis here, for instance).
            solve(which, &mut x, &mut wks);
            // Warm re-solves: the iteration loops must not touch
            // the allocator at all.
            let before = tilevec_alloc_count();
            solve(which, &mut x, &mut wks);
            solve(which, &mut x, &mut wks);
            deltas.push((which, tilevec_alloc_count() - before));
        }
        deltas
    });
    for (which, delta) in &deltas[0] {
        let name = ["bicgstab", "cg", "gmres"][*which];
        assert_eq!(
            *delta, 0,
            "{name} (solver {which}) allocated {delta} TileVecs on a warm workspace"
        );
    }
}
