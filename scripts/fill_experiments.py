#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from the regenerated outputs.

Reads table1_output.txt, table2_output.txt, breakdown_output.txt and the
ablation_*.txt files at the repository root and substitutes the
__PLACEHOLDER__ markers.  Rerun after regenerating any experiment.
"""
import re
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
exp = (root / "EXPERIMENTS.md").read_text()


def slurp(name):
    return (root / name).read_text()


# ---- Table I ----
t1 = slurp("table1_output.txt")
table_lines = []
grab = False
for line in t1.splitlines():
    if line.startswith("TABLE I"):
        grab = True
    if grab:
        if line.startswith("compiler lane order"):
            break
        table_lines.append(line)
# Render as a fenced block (the aligned text is clearer than markdown pipes).
table1_block = "```text\n" + "\n".join(l for l in table_lines if l.strip()) + "\n```"
exp = exp.replace("__TABLE1__", table1_block)

# serial ratios from the first data row
row1 = next(l for l in table_lines if l.strip().startswith("1 "))
vals = [float(v) for v in re.findall(r"(\d+\.\d+) \(", row1)]
gnu, fuj, cray, noopt = vals
exp = exp.replace("__R_GNU__", f"{gnu / cray:.2f}")
exp = exp.replace("__R_NOOPT__", f"{noopt / cray:.2f}")
exp = exp.replace("__R_FUJ__", f"{fuj / cray:.2f}")

# ---- breakdown ----
b = slurp("breakdown_output.txt")
sections = b.split("§II-E BREAKDOWN")
serial, par = sections[1], sections[2]


def field(text, name):
    m = re.search(rf"{name}\s+([\d.]+) s", text)
    return float(m.group(1))


tot = field(serial, "total")
mv = field(serial, "matvec")
pc = field(serial, "preconditioning")
sites = re.search(r"BiCGSTAB sites\s+([\d.]+)% / ([\d.]+)% / ([\d.]+)%", serial)
exp = exp.replace("__B_TOTAL__", f"{tot:.1f} s")
exp = exp.replace("__B_MATVEC__", f"{mv:.1f} s ({100 * mv / tot:.0f} %)")
exp = exp.replace("__B_PRECOND__", f"{pc:.1f} s")
exp = exp.replace(
    "__B_SITES__",
    f"{sites.group(1)} % / {sites.group(2)} % / {sites.group(3)} %",
)
tot20 = field(par, "total")
mv20 = field(par, "matvec")
pc20 = field(par, "preconditioning")
mpi20 = field(par, "MPI")
exp = exp.replace("__B20_MATVEC__", f"{mv20:.1f} s of {tot20:.1f} s")
exp = exp.replace("__B20_PRECOND__", f"{pc20:.2f} s")
exp = exp.replace("__B20_MPI__", f"{mpi20:.1f} s ({100 * mpi20 / tot20:.0f} % of the run)")

# ---- Table II ----
t2 = slurp("table2_output.txt")
t2_lines = [l for l in t2.splitlines() if l and not l.startswith("per-repetition")]
cut = next(i for i, l in enumerate(t2_lines) if l.startswith("Routine"))
end = next(i for i, l in enumerate(t2_lines) if l.startswith("DDAXPY")) + 1
table2_block = "```text\n" + "\n".join(t2_lines[: end]) + "\n```"
exp = exp.replace("__TABLE2__", table2_block)

# ---- ablation one-liners ----
vl = slurp("ablation_vl.txt")
gains = re.findall(r"2048/512 gain: ([\d.]+)", vl)
exp = exp.replace(
    "__A_VL__",
    f"doubling twice more (512→2048 bit) buys only {min(gains)}–{max(gains)}× "
    "on these kernels — loop overhead and dependency chains cap the win.",
)
res = slurp("ablation_residency.txt")
ratios = re.findall(r"(\d\.\d+)\s*$", res, re.M)
exp = exp.replace(
    "__A_RES__",
    f"ratio {ratios[0]} while L1-resident, {ratios[-1]} once HBM-bound — "
    "the Table II vs Table I gap in one sweep.",
)
g = slurp("ablation_ganged.txt")
savings = re.findall(r"([+-][\d.]+)%", g)
exp = exp.replace(
    "__A_GANGED__",
    f"but the ganged form saves {savings[-1].lstrip('+')} % of Cray-opt time at 50 ranks "
    "(and ~2.5× fewer global reductions).",
)
p = slurp("ablation_precond.txt")
rows = re.findall(r"(none|jacobi|block-jacobi SPAI\(0\)|stencil SPAI\(1\))\s+(\d+)\s+([\d.]+)\s+([\d.]+)", p)
summary = ", ".join(f"{name.split()[0]} {ips}/solve" for name, _, ips, _ in rows)
exp = exp.replace("__A_PRECOND__", summary + " (iterations; simulated times in ablation_precond.txt).")
s = slurp("ablation_solvers.txt")
solver_rows = re.findall(r"(bicgstab-\w+|gmres\(\d+\))\s+(\d+)\s+(\d+)", s)
summary = "; ".join(f"{n}: {i} iters, {r} reductions" for n, i, r in solver_rows)
exp = exp.replace("__A_SOLVERS__", summary + ".")

(root / "EXPERIMENTS.md").write_text(exp)
left = re.findall(r"__[A-Z0-9_]+__", exp)
print("filled; remaining placeholders:", left)
