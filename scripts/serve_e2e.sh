#!/usr/bin/env bash
# End-to-end exercise of the v2d-serve daemon over its Unix socket.
#
# Starts the daemon single-worker (so queue order is deterministic),
# occupies the worker with a slow deck, and then — while that job runs —
# submits the scripted mix the service must multiplex correctly:
#
#   * a duplicate pair (same deck modulo comments/whitespace): both
#     responses must carry byte-identical "result" members, exactly one
#     computed and one deduped, and the daemon's dedup counter must be
#     nonzero;
#   * a priority pair: the high-priority submission queued later must
#     complete before the earlier default-priority one;
#   * a cancellation: answered `cancelled` immediately, with a
#     `cancelled` cancel-ack;
#   * a rank-kill spec: 2 ranks, rank 0 killed mid-run — the response
#     must carry a RecoveryLedger showing the supervised recovery;
#   * a registry scenario by name: `[problem] family = sedov` runs the
#     Sedov blast (hydro enabled) through the same queue.  A duplicate
#     sedov pair must dedupe (the canonical deck hashes the problem.*
#     keys), while the byte-wise twin *without* the family line runs
#     the legacy pulse and must hash apart;
#   * a status probe and a shutdown handshake (drain + bye).
#
# Exits non-zero (with the offending line) on any violated assertion.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -f Cargo.toml || ! -d crates/serve ]]; then
    echo "error: serve_e2e.sh must run against the v2d repo root, but landed in $PWD" >&2
    exit 2
fi

echo "building v2d-serve …"
cargo build --release -p v2d --bin v2d-serve

SOCK="${SOCK:-$(mktemp -u /tmp/v2d_serve_e2e_XXXXXX.sock)}"
./target/release/v2d-serve --socket "$SOCK" --workers 1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -f "$SOCK"' EXIT

for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "daemon never bound $SOCK" >&2; exit 1; }

python3 - "$SOCK" <<'EOF'
import json, socket, sys

sock_path = sys.argv[1]

def deck(n1, n2, steps, np1=1, np2=1, every=0, ks2="2.0", comment=""):
    return (
        f"{comment}[grid]\nn1 = {n1}\nn2 = {n2}\nx1 = 0.0 2.0\nx2 = 0.0 1.0\n"
        f"[run]\ndt = 0.01\nn_steps = {steps}\nnprx1 = {np1}\nnprx2 = {np2}\n"
        f"checkpoint_every = {every}\n"
        f"[radiation]\nlimiter = none\nkappa_a = 0.0 0.0\nkappa_s = 2.0 {ks2}\n"
    )

def sedov_deck(comment="", family="[problem]\nfamily = sedov\n\n"):
    # Mirrors problems::Scenario::deck for the Sedov family; dropping
    # `family` (empty string) yields the byte-wise legacy twin that must
    # hash apart from the named scenario.
    return (
        f"{comment}{family}[grid]\nn1 = 16\nn2 = 16\nx1 = 0.0 1.0\nx2 = 0.0 1.0\n"
        "[run]\ndt = 0.005\nn_steps = 3\nnprx1 = 1\nnprx2 = 1\n"
        "[radiation]\nlimiter = none\nkappa_a = 0.0 0.0\nkappa_s = 2.0 2.0\n"
        "[hydro]\nenabled = true\ngamma = 1.4\ncfl = 0.4\n"
        "bc_west = reflecting\nbc_east = reflecting\n"
        "bc_south = reflecting\nbc_north = reflecting\n"
    )

def submit(id, d, priority=0, faults=None):
    r = {"req": "submit", "id": id, "deck": d, "priority": priority}
    if faults:
        r["faults"] = faults
    return r

# One batch, written before reading anything: the slow job pins the
# single worker, so everything after it is admitted while queued and the
# dedupe / priority / cancel decisions are deterministic.
requests = [
    submit("slow", deck(64, 32, 6)),
    submit("dup-a", deck(16, 8, 3)),
    submit("dup-b", deck(16, 8, 3, comment="# same physics, different text\n")),
    submit("lo", deck(20, 10, 3, ks2="2.000000001")),
    submit("hi", deck(20, 10, 3, ks2="2.000000002"), priority=5),
    submit("cxl", deck(24, 12, 3, ks2="2.000000003")),
    {"req": "cancel", "id": "cxl-c", "target": "cxl"},
    submit("kill", deck(16, 8, 4, np1=2, np2=1, every=1),
           faults=[{"step": 2, "rank": 0, "kind": "rank-kill"}]),
    submit("sed-a", sedov_deck()),
    submit("sed-b", sedov_deck(comment="# same blast, different text\n")),
    submit("sed-plain", sedov_deck(family="")),
    {"req": "status", "id": "st"},
    {"req": "shutdown", "id": "bye"},
]
expected = len(requests)  # one response per request

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
s.sendall(("".join(json.dumps(r) + "\n" for r in requests)).encode())

lines = []
buf = b""
s.settimeout(120)
while len(lines) < expected:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
    while b"\n" in buf:
        line, buf = buf.split(b"\n", 1)
        if line.strip():
            lines.append(line.decode())
s.close()
assert len(lines) == expected, f"expected {expected} responses, got {len(lines)}:\n" + "\n".join(lines)

by_id = {}
order = []
for line in lines:
    obj = json.loads(line)
    by_id[obj["id"]] = (obj, line)
    order.append(obj["id"])
print("response order:", " ".join(order))

def result_member(line):
    # Raw bytes of the trailing "result" member — byte identity, not
    # merely parsed equality.
    return line.split('"result":', 1)[1]

# 1. Duplicate pair: identical bytes, one computed + one deduped.
da, la = by_id["dup-a"]
db, lb = by_id["dup-b"]
assert result_member(la) == result_member(lb), f"duplicate results differ:\n{la}\n{lb}"
sources = {da["source"], db["source"]}
assert sources == {"computed", "dedup"}, f"duplicate pair sources {sources}"
assert da["result"]["outcome"] == "done", la

# 2. Priority pair: "hi" (queued later, priority 5) completes first.
assert order.index("hi") < order.index("lo"), \
    f"priority inversion: hi answered after lo ({order})"

# 3. Cancellation: immediate cancelled result + cancelled ack.
cxl, lc = by_id["cxl"]
assert cxl["result"]["outcome"] == "cancelled", lc
ack, lk = by_id["cxl-c"]
assert ack["outcome"] == "cancelled", lk

# 4. Rank-kill spec: recovered, with a ledger proving the recovery.
kill, lkill = by_id["kill"]
assert kill["result"]["outcome"] == "done", lkill
ledger = kill["result"].get("ledger")
assert ledger and ledger["kills"] >= 1 and ledger["attempts"] >= 2, lkill
print(f"kill recovered: {ledger['kills']} kill(s), {ledger['attempts']} attempts, "
      f"{ledger['rollbacks']} rollback(s)")

# 5. Registry scenario by name: the sedov pair dedupes byte-identically,
#    and the family-less twin runs the legacy pulse under a different
#    content hash (the canonical deck carries the problem.* keys).
sa, lsa = by_id["sed-a"]
sb, lsb = by_id["sed-b"]
assert sa["result"]["outcome"] == "done", lsa
assert result_member(lsa) == result_member(lsb), f"sedov duplicates differ:\n{lsa}\n{lsb}"
sed_sources = {sa["source"], sb["source"]}
assert sed_sources == {"computed", "dedup"}, f"sedov pair sources {sed_sources}"
sp, lsp = by_id["sed-plain"]
assert sp["result"]["outcome"] == "done", lsp
assert sp["source"] == "computed", f"family-less twin deduped against the scenario: {lsp}"
assert sp["result"]["bits_fnv32"] != sa["result"]["bits_fnv32"], \
    f"sedov and legacy twin agree bit-for-bit: {lsa}\n{lsp}"
print(f"sedov by name: checksum {sa['result']['bits_fnv32']:#010x}, "
      f"legacy twin {sp['result']['bits_fnv32']:#010x}")

# 6. Live telemetry: the dedup counter is visible and nonzero.
st, _ = by_id["st"]
deduped = st["metrics"]["serve.deduped"]["value"]
assert deduped >= 1, f"serve.deduped = {deduped}"
print(f"serve.deduped = {deduped}")

# 7. Shutdown handshake.
assert by_id["bye"][0]["resp"] == "bye"
print("serve e2e: all assertions passed")
EOF

wait "$DAEMON"
echo "daemon exited cleanly"
