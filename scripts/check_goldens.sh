#!/usr/bin/env bash
# Regenerate every checked-in golden artifact and fail on drift.
#
# The reference .txt captures at the repo root carry cargo noise
# (Compiling / Finished / Running …) and machine-specific paths, so the
# comparison strips the same noise lines from both sides that
# crates/bench/tests/golden.rs strips (`is_noise`).  The bitmap is
# compared byte-for-byte through `git diff --exit-code`.
#
# Regenerated outputs land in $ARTIFACT_DIR (default
# target/golden-artifacts) together with a Chrome trace + RunReport of
# the Table II run, so a failing CI job can upload everything needed to
# diagnose the drift.
#
# Env knobs:
#   ARTIFACT_DIR=dir   where regenerated outputs go
#   SKIP_SLOW=1        skip table1 + breakdown (full 100-step runs,
#                      minutes each)
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with a real message if the `dirname $0` hop did not land at
# the repo root (e.g. the script was invoked by bare name through PATH,
# making `dirname` return "." and the cd a no-op in some other tree):
# every comparison below would otherwise die confusingly mid-run.
if [[ ! -f Cargo.toml || ! -f table2_output.txt || ! -d crates/bench ]]; then
    echo "error: check_goldens.sh must run against the v2d repo root, but landed in $PWD" >&2
    echo "       (no Cargo.toml / golden captures here — invoke it by path," >&2
    echo "        e.g. scripts/check_goldens.sh from a full checkout)" >&2
    exit 2
fi

ART="${ARTIFACT_DIR:-target/golden-artifacts}"
mkdir -p "$ART"

echo "building release binaries …"
cargo build --release -p v2d-bench --bins

# Mirror golden.rs::is_noise: cargo noise, machine-specific paths, and
# stderr progress lines merged into the original captures.
stable() {
    grep -vE '^[[:space:]]*(Compiling|Finished|Running|bitmap written to|running )' "$1" \
        | grep -vF ') done: ' || true
}

fail=0

check_txt() {
    local golden="$1" bin="$2"; shift 2
    echo "== $golden"
    local fresh="$ART/$golden"
    "./target/release/$bin" "$@" > "$fresh"
    if ! diff -u <(stable "$golden") <(stable "$fresh") > "$ART/$golden.diff"; then
        echo "   DRIFT (see $ART/$golden.diff)"
        fail=1
    else
        rm -f "$ART/$golden.diff"
        echo "   ok"
    fi
}

check_txt table2_output.txt      table2
check_txt fig1_output.txt        fig1 "$ART/fig1_sparsity.pbm"
check_txt ablation_vl.txt        ablation_vl
check_txt ablation_residency.txt ablation_residency
check_txt ablation_ganged.txt    ablation_ganged
check_txt ablation_precond.txt   ablation_precond
check_txt ablation_solvers.txt   ablation_solvers
check_txt ablation_faults.txt    ablation_faults
check_txt table_scenarios.txt    table_scenarios
if [[ "${SKIP_SLOW:-0}" != 1 ]]; then
    check_txt table1_output.txt    table1
    check_txt table1_full.txt      table1_full
    check_txt breakdown_output.txt breakdown
else
    echo "== table1_output.txt / table1_full.txt / breakdown_output.txt skipped (SKIP_SLOW=1)"
fi

# The bitmap golden is noise-free: regenerate in place and let git judge.
echo "== fig1_sparsity.pbm"
cp "$ART/fig1_sparsity.pbm" fig1_sparsity.pbm
if ! git diff --exit-code -- fig1_sparsity.pbm; then
    echo "   DRIFT"
    fail=1
else
    echo "   ok"
fi

# A Chrome trace + RunReport of the Table II run ride along with the
# artifacts, drift or not — chrome://tracing / speedscope food.
./target/release/table2 --trace "$ART/table2_trace.json" --report "$ART/table2_report.json" \
    > /dev/null

if [[ $fail -ne 0 ]]; then
    echo
    echo "golden drift detected — regenerated artifacts in $ART"
    exit 1
fi
echo
echo "all goldens reproduced"
