//! A dependency-free stand-in for the subset of `criterion` this
//! workspace uses, so `cargo bench` works fully offline.
//!
//! Each benchmark warms up briefly, then runs timed batches until a
//! small time budget is spent, and prints mean wall time per iteration
//! (plus throughput when declared).  No statistics machinery, no HTML
//! reports — just honest timings on stderr-free stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one iteration, echoed as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { iters_done: 0, elapsed: Duration::ZERO, budget }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let mut batch = 1u64;
        while self.elapsed < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.elapsed += t0.elapsed();
            self.iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    fn mean(&self) -> Option<Duration> {
        (self.iters_done > 0).then(|| self.elapsed / self.iters_done.max(1) as u32)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let Some(mean) = b.mean() else {
            println!("{}/{:<28} (no iterations)", self.name, id.label);
            return;
        };
        let per_iter = mean.as_secs_f64();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:>10.1} Melem/s", n as f64 / per_iter / 1e6),
            Throughput::Bytes(n) => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
            }
        });
        println!(
            "{}/{:<28} {:>12.3} µs/iter ({} iters){}",
            self.name,
            id.label,
            per_iter * 1e6,
            b.iters_done,
            rate.unwrap_or_default()
        );
    }
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small per-benchmark budget: keeps whole-suite `cargo bench`
        // runs fast while still averaging over many iterations.
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function(BenchmarkId::from(name), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
