//! A dependency-free stand-in for the subset of `proptest` this
//! workspace uses, so the build works fully offline.
//!
//! Semantics kept: deterministic pseudo-random generation (seeded from
//! the test path, so failures reproduce), `proptest!`-declared tests
//! run `ProptestConfig::cases` times, `prop_assume!` skips a case, and
//! the `prop_assert*` family fails the test with the usual message.
//! Not kept: shrinking — a failing case reports its inputs via the
//! assertion message only.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator.  Unlike upstream proptest there is no value
    /// tree / shrinking; `generate` directly yields one value.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erase, for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }

        /// Transform generated values (upstream `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String-literal "regex" strategies.  Supports the character-class
    /// shape the workspace uses (`[a-z]{1,8}`); anything else is taken
    /// as a literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((chars, min, max)) = parse_class_pattern(self) {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
            } else {
                (*self).to_string()
            }
        }
    }

    /// Parse `[a-zA-Z0-9_...]{m,n}` into (alphabet, m, n).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = reps.split_once(',')?;
        let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        if min > max {
            return None;
        }
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return None;
                }
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            None
        } else {
            Some((chars, min, max))
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = rng.below(41) as i32 - 20;
            m * 10f64.powi(e)
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `elem` (`size` is a
    /// half-open length range, matching upstream).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// How many cases each `proptest!` test runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test path so
    /// every run (and every failure) is reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_test(path: &str) -> Self {
            // FNV-1a over the test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)` with 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Cases run inside a closure; an early return abandons just the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-declaration macro.  Each declared `fn` becomes a normal
/// `#[test]` (the attribute is written inside the block, as upstream
/// requires) that evaluates its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let case = move || $body;
                case();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}
