//! Cross-crate integration tests: the whole stack from the facade crate
//! down — problem setup, decomposed solves, instrumentation, checkpoint
//! I/O, and the experiment harness invariants.

use v2d::comm::{ReduceOp, Spmd, TileMap};
use v2d::core::checkpoint::{restore_checkpoint, write_checkpoint};
use v2d::core::problems::{GaussianPulse, RadiativeRelaxation};
use v2d::core::sim::V2dSim;
use v2d::machine::{CompilerId, CompilerProfile};

fn cray() -> Vec<CompilerProfile> {
    vec![CompilerProfile::cray_opt()]
}

#[test]
fn gaussian_pulse_runs_identically_on_any_topology() {
    let (n1, n2) = (24, 16);
    let cfg = GaussianPulse::scaled_config(n1, n2, 2);
    let field_for = |np1: usize, np2: usize| -> Vec<f64> {
        let map = TileMap::new(n1, n2, np1, np2);
        let outs = Spmd::new(np1 * np2).with_profiles(cray()).run(|ctx| {
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            sim.run(&ctx.comm, &mut ctx.sink);
            let g = sim.grid();
            let mut out = Vec::new();
            for s in 0..2 {
                for i2 in 0..g.n2 {
                    for i1 in 0..g.n1 {
                        out.push((
                            (s, g.i1_start + i1, g.i2_start + i2),
                            sim.erad().get(s, i1 as isize, i2 as isize),
                        ));
                    }
                }
            }
            out
        });
        let mut all: Vec<_> = outs.into_iter().flatten().collect();
        all.sort_by_key(|&((s, a, b), _)| (s, b, a));
        all.into_iter().map(|(_, v)| v).collect()
    };
    let single = field_for(1, 1);
    for (np1, np2) in [(3, 1), (2, 2), (4, 4)] {
        let multi = field_for(np1, np2);
        for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
            assert!(
                (a - b).abs() < 1e-7 * (1.0 + a.abs()),
                "{np1}×{np2} differs from serial at {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn simulated_times_are_deterministic_across_runs() {
    let cfg = GaussianPulse::scaled_config(16, 12, 2);
    let run = || {
        let map = TileMap::new(16, 12, 2, 2);
        Spmd::new(4).run(|ctx| {
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            sim.run(&ctx.comm, &mut ctx.sink);
            ctx.sink.lanes.iter().map(|l| l.clock.now().cycles()).collect::<Vec<u64>>()
        })
    };
    assert_eq!(run(), run(), "virtual clocks must not depend on host scheduling");
}

#[test]
fn compiler_ordering_holds_serially_on_small_problems() {
    let cfg = GaussianPulse::scaled_config(20, 10, 2);
    let times = Spmd::new(1).run(|ctx| {
        let map = TileMap::new(20, 10, 1, 1);
        let mut sim = V2dSim::new(cfg, &ctx.comm, map);
        GaussianPulse::standard().init(&mut sim);
        sim.run(&ctx.comm, &mut ctx.sink);
        let t = |id: CompilerId| {
            ctx.sink.lanes.iter().find(|l| l.profile.id == id).expect("lane").elapsed_secs()
        };
        (
            t(CompilerId::Gnu),
            t(CompilerId::Fujitsu),
            t(CompilerId::CrayOpt),
            t(CompilerId::CrayNoOpt),
        )
    });
    let (gnu, fuj, cray, noopt) = times[0];
    assert!(gnu > fuj, "GNU {gnu} should be slowest (Fujitsu {fuj})");
    assert!(fuj > cray, "Fujitsu {fuj} should trail Cray-opt {cray}");
    assert!(noopt > cray, "no-opt {noopt} must trail opt {cray}");
    assert!(
        (1.2..2.0).contains(&(noopt / cray)),
        "no-opt/opt ratio {} outside Table I's ≈1.45 band",
        noopt / cray
    );
}

#[test]
fn checkpoint_roundtrips_through_disk_and_topologies() {
    let (n1, n2) = (16, 8);
    let cfg = GaussianPulse::linear_config(n1, n2, 4);
    let dir = std::env::temp_dir().join("v2d_integration_ck");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("state.h5l");

    // Run 2 steps on 4 ranks, checkpoint to disk.
    {
        let map = TileMap::new(n1, n2, 2, 2);
        let path = path.clone();
        Spmd::new(4).with_profiles(cray()).run(move |ctx| {
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            sim.step(&ctx.comm, &mut ctx.sink);
            sim.step(&ctx.comm, &mut ctx.sink);
            let ck = write_checkpoint(&ctx.comm, &mut ctx.sink, &sim).expect("checkpoint gather");
            if ctx.rank() == 0 {
                ck.save(&path).expect("save checkpoint");
            }
        });
    }

    // Restore on a *different* topology (2 ranks) and keep going; then
    // compare with an uninterrupted serial run.
    let restored = {
        let map = TileMap::new(n1, n2, 2, 1);
        let path = path.clone();
        let outs = Spmd::new(2).with_profiles(cray()).run(move |ctx| {
            let file = v2d::io::File::open(&path).expect("open checkpoint");
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            restore_checkpoint(&mut sim, &file).expect("valid checkpoint");
            assert_eq!(sim.istep(), 2);
            sim.step(&ctx.comm, &mut ctx.sink);
            sim.step(&ctx.comm, &mut ctx.sink);
            let g = sim.grid();
            let mut out = Vec::new();
            for s in 0..2 {
                for i2 in 0..g.n2 {
                    for i1 in 0..g.n1 {
                        out.push((
                            (s, g.i1_start + i1, g.i2_start + i2),
                            sim.erad().get(s, i1 as isize, i2 as isize),
                        ));
                    }
                }
            }
            out
        });
        let mut all: Vec<_> = outs.into_iter().flatten().collect();
        all.sort_by_key(|&((s, a, b), _)| (s, b, a));
        all.into_iter().map(|(_, v)| v).collect::<Vec<f64>>()
    };

    let reference = {
        let map = TileMap::new(n1, n2, 1, 1);
        let outs = Spmd::new(1).with_profiles(cray()).run(|ctx| {
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            for _ in 0..4 {
                sim.step(&ctx.comm, &mut ctx.sink);
            }
            sim.erad().interior_to_vec()
        });
        outs.into_iter().next().expect("serial run")
    };

    assert_eq!(reference.len(), restored.len());
    for (i, (a, b)) in reference.iter().zip(&restored).enumerate() {
        assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "restored run diverged at {i}: {a} vs {b}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mpi_time_grows_with_rank_count() {
    let cfg = GaussianPulse::scaled_config(32, 16, 2);
    let mpi_for = |np1: usize, np2: usize| -> f64 {
        let map = TileMap::new(32, 16, np1, np2);
        let outs = Spmd::new(np1 * np2).with_profiles(cray()).run(|ctx| {
            let mut sim = V2dSim::new(cfg, &ctx.comm, map);
            GaussianPulse::standard().init(&mut sim);
            sim.run(&ctx.comm, &mut ctx.sink);
            ctx.sink.lanes[0].mpi_secs()
        });
        outs.into_iter().fold(0.0, f64::max)
    };
    let two = mpi_for(2, 1);
    let eight = mpi_for(4, 2);
    assert!(two > 0.0);
    assert!(eight > two, "8 ranks ({eight}) should spend more MPI time than 2 ({two})");
}

#[test]
fn species_relaxation_and_global_reductions_agree_across_ranks() {
    let prob = RadiativeRelaxation { e0: 3.0, e1: 1.0, kappa_x: 0.25 };
    let cfg = prob.config(12, 12, 0.02, 20);
    let outs = Spmd::new(3).with_profiles(cray()).run(|ctx| {
        let map = TileMap::new(12, 12, 3, 1);
        let mut sim = V2dSim::new(cfg, &ctx.comm, map);
        prob.init(&mut sim);
        sim.run(&ctx.comm, &mut ctx.sink);
        let total = sim.total_radiation_energy(&ctx.comm, &mut ctx.sink);
        let local_diff = sim.erad().get(0, 2, 2) - sim.erad().get(1, 2, 2);
        let global_max_diff = ctx.comm.allreduce_scalar(&mut ctx.sink, ReduceOp::Max, local_diff);
        (total, global_max_diff)
    });
    let want = prob.analytic_difference(1.0, 0.4);
    for (total, diff) in outs {
        // Sum conserved up to the (tiny but nonzero) Dirichlet boundary
        // leakage: (3 + 1) × area 1.
        assert!((total - 4.0).abs() < 1e-2, "energy sum drifted: {total}");
        assert!((diff - want).abs() < 0.05, "relaxation off: {diff} vs {want}");
    }
}
