//! End-to-end tests of the `v2d` command-line driver: parameter deck in,
//! simulation out, checkpoint on disk.

use std::process::Command;

fn v2d() -> Command {
    Command::new(env!("CARGO_BIN_EXE_v2d"))
}

#[test]
fn print_paper_emits_a_parseable_deck() {
    let out = v2d().arg("--print-paper").output().expect("run v2d");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8");
    assert!(text.contains("[grid]") && text.contains("n1 = 200"));
    // The printed deck must round-trip through the parser.
    let pf = v2d::core::config_file::ParFile::parse(&text).expect("parse");
    let (cfg, _) = pf.to_config().expect("config");
    assert_eq!(cfg.n_steps, 100);
}

#[test]
fn runs_a_small_deck_and_writes_a_checkpoint() {
    let dir = std::env::temp_dir().join(format!("v2d_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let deck = dir.join("small.par");
    std::fs::write(
        &deck,
        "[grid]\nn1 = 24\nn2 = 12\nx1 = 0.0 2.0\nx2 = 0.0 1.0\n\
         [run]\ndt = 0.01\nn_steps = 2\nnprx1 = 2\nnprx2 = 1\n\
         [radiation]\nkappa_a = 0.02 0.04\nkappa_s = 2.0 3.0\nkappa_x = 0.01\n",
    )
    .expect("write deck");

    let out = v2d().arg(&deck).current_dir(&dir).output().expect("run v2d");
    assert!(out.status.success(), "v2d failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("solves: 6"), "unexpected output:\n{text}");
    assert!(text.contains("Cray (opt)"));

    // The checkpoint must exist and decode.
    let ck = v2d::io::File::open(dir.join("v2d_final.h5l")).expect("checkpoint readable");
    let erad = ck.dataset("radiation/erad").expect("erad present");
    assert_eq!(erad.shape(), &[2, 12, 24]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_deck_reports_error_and_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("v2d_cli_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let deck = dir.join("bad.par");
    std::fs::write(&deck, "[grid]\nn1 = 24\n# n2 missing\n").expect("write");
    let out = v2d().arg(&deck).output().expect("run v2d");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("grid.n2"), "unhelpful error: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = v2d().arg("/nonexistent/deck.par").output().expect("run v2d");
    assert!(!out.status.success());
}
