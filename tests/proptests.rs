//! Property-based tests over the whole stack: the simulated-SVE kernels
//! against native oracles at arbitrary sizes and vector lengths, solver
//! and operator invariants under random inputs, h5lite round-trips on
//! arbitrary trees, and clock monotonicity under random communication
//! schedules.

use proptest::prelude::*;

use v2d::comm::{CartComm, ReduceOp, Spmd, TileMap};
use v2d::linalg::{
    bicgstab, kernels, BicgVariant, Identity, LinearOp, SolveOpts, SolverWorkspace, StencilCoeffs,
    StencilOp, TileVec,
};
use v2d::machine::{CompilerProfile, ExecCtx, MultiCostSink};
use v2d::sve::kernels::{
    oracle, run_daxpy, run_ddaxpy, run_dprod, run_dscal, run_matvec, BandedSystem, Variant,
};
use v2d::sve::ExecConfig;

fn sink1() -> MultiCostSink {
    MultiCostSink::single(CompilerProfile::cray_opt())
}

fn vl_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(128u32), Just(256), Just(512), Just(1024), Just(2048)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_daxpy_matches_oracle(
        n in 1usize..200,
        a in -10.0f64..10.0,
        vl in vl_strategy(),
        seed in 0u64..1000,
    ) {
        let x: Vec<f64> = (0..n).map(|i| ((i as f64 + seed as f64) * 0.7).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i as f64 * 1.3 + seed as f64) * 0.4).cos()).collect();
        let mut want = y.clone();
        oracle::daxpy(a, &x, &mut want);
        for variant in [Variant::Scalar, Variant::Sve] {
            let (got, _) = run_daxpy(a, &x, &y, variant, &ExecConfig::a64fx_l1().with_vl(vl));
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()));
            }
        }
    }

    #[test]
    fn sim_dprod_dscal_ddaxpy_match_oracles(
        n in 1usize..150,
        vl in vl_strategy(),
        c in -5.0f64..5.0,
        d in -5.0f64..5.0,
    ) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() + 0.2).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() - 0.1).collect();
        let z: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin() * 0.5).collect();
        let cfg = ExecConfig::a64fx_l1().with_vl(vl);

        let want_dot = oracle::dprod(&x, &y);
        for variant in [Variant::Scalar, Variant::Sve] {
            let (got, _) = run_dprod(&x, &y, variant, &cfg);
            prop_assert!((got - want_dot).abs() <= 1e-9 * (1.0 + want_dot.abs()));

            let mut want = y.clone();
            oracle::dscal(c, d, &mut want);
            let (got, _) = run_dscal(c, d, &y, variant, &cfg);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()));
            }

            let want = oracle::ddaxpy(c, d, &x, &y, &z);
            let (got, _) = run_ddaxpy(c, d, &x, &y, &z, variant, &cfg);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()));
            }
        }
    }

    #[test]
    fn sim_matvec_matches_oracle(
        n in 4usize..120,
        vl in vl_strategy(),
        m_frac in 0.05f64..0.9,
    ) {
        let m = ((n as f64 * m_frac) as usize).clamp(1, n - 1);
        let sys = BandedSystem::test_system(n, m);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let want = sys.matvec_reference(&x);
        for variant in [Variant::Scalar, Variant::Sve] {
            let (got, _) = run_matvec(&sys, &x, variant, &ExecConfig::a64fx_l1().with_vl(vl));
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-11 * (1.0 + w.abs()));
            }
        }
    }

    #[test]
    fn sve_cycle_counts_are_vl_monotone_for_streaming_kernels(
        n in 64usize..300,
    ) {
        // Wider vectors never cost more cycles on streaming kernels.
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let y = x.clone();
        let mut last = u64::MAX;
        for vl in [128u32, 256, 512, 1024, 2048] {
            let (_, stats) = run_daxpy(1.5, &x, &y, Variant::Sve, &ExecConfig::a64fx_l1().with_vl(vl));
            prop_assert!(stats.cycles <= last, "VL {vl} cost more than narrower");
            last = stats.cycles;
        }
    }

    #[test]
    fn tile_kernels_match_flat_arithmetic(
        n1 in 1usize..12,
        n2 in 1usize..12,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let mut sk = sink1();
        let mk = |seed: f64| {
            let mut v = TileVec::new(n1, n2);
            v.fill_with(|s, i1, i2| ((s as f64 + 1.0) * seed + i1 as f64 * 0.3 + i2 as f64 * 0.7).sin());
            v
        };
        let x = mk(1.1);
        let y = mk(2.3);
        let mut w = mk(3.7);
        let w0 = w.clone();
        kernels::ddaxpy(&mut ExecCtx::new(&mut sk), a, &x, b, &y, &mut w);
        let (xf, yf, w0f, wf) =
            (x.interior_to_vec(), y.interior_to_vec(), w0.interior_to_vec(), w.interior_to_vec());
        for i in 0..wf.len() {
            let want = w0f[i] + a * xf[i] + b * yf[i];
            prop_assert!((wf[i] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
        let dot = kernels::dprod_local(&mut ExecCtx::new(&mut sk), &x, &y);
        let want: f64 = xf.iter().zip(&yf).map(|(p, q)| p * q).sum();
        prop_assert!((dot - want).abs() < 1e-10 * (1.0 + want.abs()));
    }

    #[test]
    fn bicgstab_solves_random_diagonally_dominant_systems(
        n1 in 3usize..10,
        n2 in 3usize..10,
        seed in 0usize..50,
    ) {
        let map = TileMap::new(n1, n2, 1, 1);
        let converged = Spmd::new(1)
            .with_profiles(vec![CompilerProfile::cray_opt()])
            .run(move |ctx| {
                let cart = CartComm::new(&ctx.comm, map);
                let coeffs = StencilCoeffs::manufactured(n1, n2, seed, seed * 3);
                let mut op = StencilOp::new(coeffs, cart);
                let mut b = TileVec::new(n1, n2);
                b.fill_with(|s, i1, i2| ((s + i1 * 2 + i2 * 5 + seed) as f64 * 0.21).sin());
                let mut x = TileVec::new(n1, n2);
                let mut m = Identity;
                let mut wks = SolverWorkspace::new(n1, n2);
                let stats = bicgstab(
                    &ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut op, &mut m, &b, &mut x,
                    &mut wks,
                    &SolveOpts { tol: 1e-10, variant: BicgVariant::Ganged, ..Default::default() },
                ).unwrap();
                // Verify the residual directly.
                let mut ax = TileVec::new(n1, n2);
                op.apply(&ctx.comm, &mut ExecCtx::new(&mut ctx.sink), &mut x, &mut ax);
                let mut worst: f64 = 0.0;
                for (g, w) in ax.interior_to_vec().iter().zip(b.interior_to_vec()) {
                    worst = worst.max((g - w).abs());
                }
                (stats.converged, worst)
            });
        prop_assert!(converged[0].0);
        prop_assert!(converged[0].1 < 1e-7, "residual {}", converged[0].1);
    }

    #[test]
    fn h5lite_roundtrips_arbitrary_trees(
        names in proptest::collection::vec("[a-z]{1,8}", 1..6),
        data in proptest::collection::vec(-1e12f64..1e12, 0..64),
        attr in -1_000_000_000i64..1_000_000_000i64,
    ) {
        let mut f = v2d::io::File::new();
        let mut path = String::new();
        for n in &names {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(n);
        }
        f.set_attr(&format!("{path}/seed"), v2d::io::Value::I64(attr));
        f.write_dataset(
            &format!("{path}/data"),
            v2d::io::Dataset::f64(vec![data.len()], data.clone()),
        );
        let g = v2d::io::File::from_bytes(&f.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&g, &f);
    }

    #[test]
    fn clocks_are_monotone_under_random_comm_schedules(
        schedule in proptest::collection::vec(0u8..3, 1..20),
    ) {
        let outs = Spmd::new(3)
            .with_profiles(vec![CompilerProfile::fujitsu()])
            .run(move |ctx| {
                let mut last = 0u64;
                let mut ok = true;
                for (k, op) in schedule.iter().enumerate() {
                    match op {
                        0 => {
                            ctx.comm.allreduce_scalar(&mut ctx.sink, ReduceOp::Sum, k as f64);
                        }
                        1 => {
                            ctx.comm.barrier(&mut ctx.sink);
                        }
                        _ => {
                            let partner = (ctx.rank() + 1) % 3;
                            let from = (ctx.rank() + 2) % 3;
                            ctx.comm.send(&mut ctx.sink, partner, k as u32, &[1.0]);
                            let _ = ctx.comm.recv(&mut ctx.sink, from, k as u32);
                        }
                    }
                    let now = ctx.sink.lanes[0].clock.now().cycles();
                    ok &= now >= last;
                    last = now;
                }
                ok
            });
        prop_assert!(outs.into_iter().all(|b| b));
    }
}
