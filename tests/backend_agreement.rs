//! Property test for the `KernelBackend` dispatch surface: the native
//! slice loops, the simulated scalar codegen, and the simulated SVE
//! codegen at every legal vector length must all agree with a plain
//! f64 oracle on the five Table II kernels, for arbitrary inputs.
//!
//! This is the acceptance guarantee behind routing every kernel through
//! one dispatch surface: whichever backend executes a kernel, the
//! architectural results are the same numbers.

use proptest::prelude::*;

use v2d::linalg::backend::native;
use v2d::linalg::{all_backends, KernelBackend, SimSve};
use v2d::sve::kernels::BandedSystem;

fn vl_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(128u32), Just(256), Just(512), Just(1024), Just(2048)]
}

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, n..n + 1)
}

/// `|got − want|` within a mixed absolute/relative tolerance.  The
/// simulator's FMA contraction can differ from the oracle's separate
/// multiply+add in the last bits, so exact equality is not the contract
/// — agreement to ~1e-9 relative is.
fn close(got: f64, want: f64, tol: f64) -> bool {
    (got - want).abs() <= tol * (1.0 + want.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_backends_agree_with_oracle(
        n in 1usize..160,
        a in -8.0f64..8.0,
        b in -8.0f64..8.0,
        seed in 0u64..1_000_000,
    ) {
        let mk = |k: u64| -> Vec<f64> {
            (0..n).map(|i| (((i as u64 * 2654435761 + seed + k) % 2000) as f64 / 100.0) - 10.0).collect()
        };
        let (x, y, z) = (mk(1), mk(2), mk(3));

        let want_dot = native::dprod(&x, &y);
        let mut want_axpy = y.clone();
        native::daxpy(a, &x, &mut want_axpy);
        let mut want_scal = y.clone();
        native::dscal(a, b, &mut want_scal);
        let mut want_dd = vec![0.0; n];
        native::ddaxpy(a, b, &x, &y, &z, &mut want_dd);

        for mut be in all_backends() {
            let name = be.name();
            prop_assert!(
                close(be.dprod(&x, &y), want_dot, 1e-9),
                "{name} dprod: {} vs {want_dot}", be.dprod(&x, &y)
            );
            let mut out = vec![0.0; n];
            be.daxpy(a, &x, &y, &mut out);
            for (g, w) in out.iter().zip(&want_axpy) {
                prop_assert!(close(*g, *w, 1e-12), "{name} daxpy: {g} vs {w}");
            }
            be.dscal(a, b, &y, &mut out);
            for (g, w) in out.iter().zip(&want_scal) {
                prop_assert!(close(*g, *w, 1e-12), "{name} dscal: {g} vs {w}");
            }
            be.ddaxpy(a, b, &x, &y, &z, &mut out);
            for (g, w) in out.iter().zip(&want_dd) {
                prop_assert!(close(*g, *w, 1e-12), "{name} ddaxpy: {g} vs {w}");
            }
        }
    }

    #[test]
    fn sve_backend_agrees_at_arbitrary_vector_length(
        n in 1usize..140,
        vl in vl_strategy(),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        x in vec_strategy(140),
        y in vec_strategy(140),
        z in vec_strategy(140),
    ) {
        let (x, y, z) = (&x[..n], &y[..n], &z[..n]);
        let mut be = SimSve::new(vl);

        prop_assert!(close(be.dprod(x, y), native::dprod(x, y), 1e-9), "vl{vl} dprod");

        let mut want = y.to_vec();
        native::daxpy(a, x, &mut want);
        let mut out = vec![0.0; n];
        be.daxpy(a, x, y, &mut out);
        for (g, w) in out.iter().zip(&want) {
            prop_assert!(close(*g, *w, 1e-12), "vl{vl} daxpy: {g} vs {w}");
        }

        let mut want = y.to_vec();
        native::dscal(a, b, &mut want);
        be.dscal(a, b, y, &mut out);
        for (g, w) in out.iter().zip(&want) {
            prop_assert!(close(*g, *w, 1e-12), "vl{vl} dscal: {g} vs {w}");
        }

        let mut want = vec![0.0; n];
        native::ddaxpy(a, b, x, y, z, &mut want);
        be.ddaxpy(a, b, x, y, z, &mut out);
        for (g, w) in out.iter().zip(&want) {
            prop_assert!(close(*g, *w, 1e-12), "vl{vl} ddaxpy: {g} vs {w}");
        }
    }

    #[test]
    fn matvec_agrees_across_backends_and_vls(
        n in 4usize..100,
        m_frac in 0.05f64..0.9,
        vl in vl_strategy(),
    ) {
        let m = ((n as f64 * m_frac) as usize).clamp(1, n - 1);
        let sys = BandedSystem::test_system(n, m);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin() + 0.4).collect();
        let want = sys.matvec_reference(&x);
        let mut out = vec![0.0; n];
        for mut be in all_backends() {
            let name = be.name();
            be.matvec(&sys, &x, &mut out);
            for (g, w) in out.iter().zip(&want) {
                prop_assert!(close(*g, *w, 1e-11), "{name} matvec: {g} vs {w}");
            }
        }
        let mut be = SimSve::new(vl);
        be.matvec(&sys, &x, &mut out);
        for (g, w) in out.iter().zip(&want) {
            prop_assert!(close(*g, *w, 1e-11), "vl{vl} matvec: {g} vs {w}");
        }
    }
}
